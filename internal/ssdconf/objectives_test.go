package ssdconf

import (
	"reflect"
	"testing"
)

func TestParseObjectiveSpec(t *testing.T) {
	cases := []struct {
		in      string
		axes    []ObjectiveAxis
		scalar  bool
		wantErr bool
	}{
		{"", nil, true, false},
		{"perf", []ObjectiveAxis{AxisPerf}, true, false},
		{"perf,power", []ObjectiveAxis{AxisPerf, AxisPower}, false, false},
		{" perf , power , lifetime ", []ObjectiveAxis{AxisPerf, AxisPower, AxisLifetime}, false, false},
		{"lifetime,perf", []ObjectiveAxis{AxisLifetime, AxisPerf}, false, false},
		{"perf,perf", nil, false, true},
		{"latency", nil, false, true},
		{"perf,", nil, false, true},
	}
	for _, c := range cases {
		spec, err := ParseObjectiveSpec(c.in)
		if c.wantErr {
			if err == nil {
				t.Fatalf("ParseObjectiveSpec(%q): want error, got %v", c.in, spec)
			}
			continue
		}
		if err != nil {
			t.Fatalf("ParseObjectiveSpec(%q): %v", c.in, err)
		}
		if !reflect.DeepEqual(spec.Axes, c.axes) {
			t.Fatalf("ParseObjectiveSpec(%q) = %v, want %v", c.in, spec.Axes, c.axes)
		}
		if spec.Scalar() != c.scalar {
			t.Fatalf("ParseObjectiveSpec(%q).Scalar() = %v, want %v", c.in, spec.Scalar(), c.scalar)
		}
	}
}

func TestObjectiveSpecRoundTrip(t *testing.T) {
	spec, err := ParseObjectiveSpec("power,lifetime")
	if err != nil {
		t.Fatal(err)
	}
	back, err := ObjectiveSpecFromNames(spec.Names())
	if err != nil {
		t.Fatal(err)
	}
	if back.String() != spec.String() {
		t.Fatalf("round trip %q != %q", back.String(), spec.String())
	}
	var zero ObjectiveSpec
	if zero.Names() != nil {
		t.Fatalf("zero spec Names() = %v, want nil", zero.Names())
	}
	if zero.String() != "perf" {
		t.Fatalf("zero spec String() = %q, want perf", zero.String())
	}
}

func TestSignatureObjectiveFold(t *testing.T) {
	cons := DefaultConstraints()
	base := NewSpace(cons).Signature()

	// Scalar specs must not perturb the signature: pre-Pareto
	// checkpoints and fleet handshakes stay byte-compatible.
	s := NewSpace(cons)
	s.Objectives = ObjectiveSpec{Axes: []ObjectiveAxis{AxisPerf}}
	if got := s.Signature(); got != base {
		t.Fatalf("perf-only spec changed signature: %s vs %s", got, base)
	}

	// Multi-axis specs fold in, and different axis sets disagree.
	multi := NewSpace(cons)
	multi.Objectives, _ = ParseObjectiveSpec("perf,power,lifetime")
	sig1 := multi.Signature()
	if sig1 == base {
		t.Fatal("multi-objective spec did not change the signature")
	}
	other := NewSpace(cons)
	other.Objectives, _ = ParseObjectiveSpec("perf,power")
	if sig2 := other.Signature(); sig2 == sig1 || sig2 == base {
		t.Fatalf("axis sets not distinguished: %s %s %s", base, sig1, sig2)
	}
}
