package ssdconf

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
)

// Signature fingerprints the parameter space: every parameter's name,
// kind, tunability, grid values and labels, plus the constraint tuple
// and the fault profile (faults change every measurement, so results
// taken under one fault stream must never seed a run under another).
//
// Two consumers share the fingerprint: tuning checkpoints refuse to
// resume under a different space (a silent grid-index remap otherwise),
// and distributed-validation workers are rejected at handshake when
// their locally reconstructed space disagrees with the coordinator's —
// e.g. a stale binary with different grids.
func (s *Space) Signature() string {
	h := fnv.New64a()
	wu := func(v uint64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v)
		h.Write(b[:])
	}
	for _, p := range s.Params {
		h.Write([]byte(p.Name))
		h.Write([]byte{0, byte(p.Kind), boolByte(p.Tunable)})
		wu(uint64(len(p.Values)))
		for _, v := range p.Values {
			wu(math.Float64bits(v))
		}
		for _, l := range p.Labels {
			h.Write([]byte(l))
			h.Write([]byte{0})
		}
	}
	wu(uint64(s.Cons.CapacityBytes))
	wu(math.Float64bits(s.Cons.CapacityTolerance))
	wu(uint64(s.Cons.Interface))
	wu(uint64(s.Cons.Flash))
	wu(math.Float64bits(s.Cons.PowerBudgetWatts))
	wu(math.Float64bits(s.Faults.Rate))
	wu(uint64(s.Faults.Seed))
	wu(uint64(s.Faults.DieFailures))
	// The objective spec changes what a measurement means to the search,
	// so Pareto fleets must not mix with scalar ones. The scalar spec is
	// deliberately NOT folded in: every pre-Pareto signature (persisted
	// in checkpoints, pinned by goldens) stays byte-identical.
	if !s.Objectives.Scalar() {
		h.Write([]byte("objectives:"))
		h.Write([]byte(s.Objectives.String()))
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}
