package ssdconf

import (
	"testing"

	"autoblox/internal/ssd"
)

// TestSignatureSensitivity: the fingerprint must be stable across
// reconstructions of the same space and must change whenever anything a
// measurement depends on changes — constraints, grids, or the fault
// profile.
func TestSignatureSensitivity(t *testing.T) {
	base := NewSpace(DefaultConstraints()).Signature()
	if again := NewSpace(DefaultConstraints()).Signature(); again != base {
		t.Fatalf("signature unstable across reconstruction: %s vs %s", base, again)
	}
	if len(base) != 16 {
		t.Fatalf("signature %q is not a 16-hex-digit fingerprint", base)
	}

	if whatIf := NewWhatIfSpace(DefaultConstraints()).Signature(); whatIf == base {
		t.Fatal("what-if space (expanded grids) shares the standard signature")
	}

	cons := DefaultConstraints()
	cons.PowerBudgetWatts += 1
	if got := NewSpace(cons).Signature(); got == base {
		t.Fatal("changed power budget did not change the signature")
	}

	faulted := NewSpace(DefaultConstraints())
	faulted.Faults = ssd.FaultProfile{Rate: 0.01, Seed: 1}
	if got := faulted.Signature(); got == base {
		t.Fatal("fault profile did not change the signature")
	}
	seeded := NewSpace(DefaultConstraints())
	seeded.Faults = ssd.FaultProfile{Rate: 0.01, Seed: 2}
	if got := seeded.Signature(); got == faulted.Signature() {
		t.Fatal("fault seed did not change the signature")
	}
}
