// Package ssdconf defines the tunable SSD configuration space AutoBlox
// searches: 52 device parameters (§3.2's continuous, discrete, boolean
// and categorical kinds), their commodity and what-if value grids, the
// user-visible constraints (capacity, host interface, flash type, power
// budget — the paper's set_cons interface), vectorization for the ML
// models, and the neighbor enumeration that drives the discrete SGD
// search of §3.4.
package ssdconf

import (
	"fmt"
	"math"
	"time"

	"autoblox/internal/ssd"
)

// Kind classifies a parameter the way §3.2 does.
type Kind uint8

const (
	// Continuous parameters take a range discretized into N endpoints
	// (data cache size, CMT size, over-provisioning, ...).
	Continuous Kind = iota
	// Discrete parameters take an explicit value list (channel counts,
	// PCIe widths, ...).
	Discrete
	// Boolean parameters enable/disable a feature.
	Boolean
	// Categorical parameters one-hot encode an unordered choice (plane
	// allocation scheme, cache policy).
	Categorical
)

func (k Kind) String() string {
	switch k {
	case Continuous:
		return "continuous"
	case Discrete:
		return "discrete"
	case Boolean:
		return "boolean"
	default:
		return "categorical"
	}
}

// Param is one tunable (or constrained) device parameter.
type Param struct {
	Name   string
	Kind   Kind
	Unit   string
	Values []float64 // the grid; booleans use {0,1}; categoricals use 0..n-1
	Labels []string  // for categoricals, one label per value
	// Tunable marks parameters the search may move. Non-tunable
	// parameters (host interface, flash type) are fixed by constraints.
	Tunable bool
	// Layout marks the seven chip-layout parameters plus page size whose
	// product is bound by the capacity constraint.
	Layout bool

	apply func(d *ssd.DeviceParams, v float64)
	get   func(d *ssd.DeviceParams) float64
}

// Stride is the grid-index step one SGD move takes on this parameter:
// 1 for small grids, len/16 for the fine what-if grids, so a "step"
// always moves the underlying value meaningfully.
func (p *Param) Stride() int {
	s := (len(p.Values) + 15) / 16
	if s < 1 {
		s = 1
	}
	return s
}

// Constraints is the user's set_cons(capacity, interface, flash_type,
// power_budget) tuple, plus the tolerance applied to the discrete
// capacity grid.
type Constraints struct {
	CapacityBytes     int64
	CapacityTolerance float64 // fraction, default 0.15
	Interface         ssd.Interface
	Flash             ssd.FlashType
	PowerBudgetWatts  float64 // 0 disables the power constraint
}

// DefaultConstraints reproduces the paper's §4.2 setting: 512GB NVMe MLC.
func DefaultConstraints() Constraints {
	return Constraints{
		CapacityBytes:     512 << 30,
		CapacityTolerance: 0.15,
		Interface:         ssd.NVMe,
		Flash:             ssd.MLC,
		PowerBudgetWatts:  0,
	}
}

// Space is the parameter space under a set of constraints.
type Space struct {
	Params []Param
	Cons   Constraints
	// Faults, when enabled, is stamped onto every device the space
	// materializes. It is environmental state, not a tunable dimension:
	// the 52 search parameters are unchanged, and the same seeded fault
	// stream applies to every candidate so measurements stay comparable.
	Faults ssd.FaultProfile
	// Objectives declares the tuning objective vector. The zero value is
	// scalar mode (historical single-grade search); any multi-axis spec
	// switches the tuner to Pareto-front search and is folded into the
	// space signature so mismatched fleets are rejected at handshake.
	Objectives ObjectiveSpec
	index      map[string]int
}

// Config assigns one grid index per parameter.
type Config []int

// Clone copies the configuration.
func (c Config) Clone() Config { return append(Config(nil), c...) }

// latencyGrids returns read/program/erase microsecond grids per flash
// type; what-if widens them (Table 7 tunes device read latency 41–83µs
// and program latency 583–1166µs for MLC).
func latencyGrids(t ssd.FlashType, whatIf bool) (read, prog, erase []float64) {
	switch t {
	case ssd.SLC:
		read, prog, erase = []float64{3, 5, 8, 12, 18, 25}, []float64{100, 150, 200, 300}, []float64{800, 1000, 1500, 2000}
	case ssd.MLC:
		read, prog, erase = []float64{41, 50, 60, 70, 83, 100}, []float64{583, 700, 900, 1000, 1166, 1400}, []float64{1500, 2000, 3000, 3800}
	default:
		read, prog, erase = []float64{70, 90, 110, 140}, []float64{1800, 2200, 2500, 3000}, []float64{3500, 4500, 5500}
	}
	if whatIf && t == ssd.MLC {
		read = rangeGrid(41, 83, 43)
		prog = rangeGrid(583, 1166, 584)
	}
	return read, prog, erase
}

// rangeGrid divides [lo, hi] uniformly into n endpoints.
func rangeGrid(lo, hi float64, n int) []float64 {
	if n < 2 {
		return []float64{lo}
	}
	out := make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	return out
}

// NewSpace builds the commodity parameter space for the constraints.
func NewSpace(cons Constraints) *Space { return newSpace(cons, false) }

// NewWhatIfSpace builds the expanded space of §4.5 (Table 7): wider
// layout bounds, finer DRAM grids and tunable flash timings, for design
// exploration beyond today's commodity parts.
func NewWhatIfSpace(cons Constraints) *Space { return newSpace(cons, true) }

func newSpace(cons Constraints, whatIf bool) *Space {
	if cons.CapacityTolerance <= 0 {
		cons.CapacityTolerance = 0.15
	}
	read, prog, erase := latencyGrids(cons.Flash, whatIf)

	channels := []float64{1, 2, 4, 6, 8, 10, 12, 16, 20, 24, 32}
	chips := []float64{1, 2, 3, 4, 5, 6, 8, 10, 12, 16}
	dataCache := rangeGrid(64, 1024, 31) // 32MB steps: covers 800MB (Intel 750) and Table 5's values
	cmt := rangeGrid(32, 640, 20)        // 32MB steps
	rate := []float64{67, 100, 133, 166, 200, 266, 333, 400, 533, 667, 800, 1066, 1200}
	// Commodity form factors (M.2/U.2/AIC) cap the host link at x8;
	// wider links are a what-if exploration.
	pcieLanes := []float64{1, 2, 4, 8}
	if whatIf {
		pcieLanes = []float64{1, 2, 4, 8, 16}
		channels = rangeGrid(1, 64, 64)
		chips = rangeGrid(1, 64, 64)
		dataCache = rangeGrid(64, 2048, 63)
		cmt = rangeGrid(64, 2048, 63)
	}

	us := func(v float64) time.Duration { return time.Duration(v * float64(time.Microsecond)) }
	mb := func(v float64) int64 { return int64(v) << 20 }

	params := []Param{
		// --- Chip layout (7) + page size.
		{Name: "FlashChannelCount", Kind: Discrete, Tunable: true, Layout: true, Values: channels,
			apply: func(d *ssd.DeviceParams, v float64) { d.Channels = int(v) },
			get:   func(d *ssd.DeviceParams) float64 { return float64(d.Channels) }},
		{Name: "ChipNoPerChannel", Kind: Discrete, Tunable: true, Layout: true, Values: chips,
			apply: func(d *ssd.DeviceParams, v float64) { d.ChipsPerChannel = int(v) },
			get:   func(d *ssd.DeviceParams) float64 { return float64(d.ChipsPerChannel) }},
		{Name: "DieNoPerChip", Kind: Discrete, Tunable: true, Layout: true, Values: []float64{1, 2, 4, 8},
			apply: func(d *ssd.DeviceParams, v float64) { d.DiesPerChip = int(v) },
			get:   func(d *ssd.DeviceParams) float64 { return float64(d.DiesPerChip) }},
		{Name: "PlaneNoPerDie", Kind: Discrete, Tunable: true, Layout: true, Values: []float64{1, 2, 3, 4, 8, 16},
			apply: func(d *ssd.DeviceParams, v float64) { d.PlanesPerDie = int(v) },
			get:   func(d *ssd.DeviceParams) float64 { return float64(d.PlanesPerDie) }},
		{Name: "BlockNoPerPlane", Kind: Discrete, Tunable: true, Layout: true, Values: []float64{128, 256, 512, 1024, 2048},
			apply: func(d *ssd.DeviceParams, v float64) { d.BlocksPerPlane = int(v) },
			get:   func(d *ssd.DeviceParams) float64 { return float64(d.BlocksPerPlane) }},
		{Name: "PageNoPerBlock", Kind: Discrete, Tunable: true, Layout: true, Values: []float64{64, 128, 256, 384, 512, 768, 1024},
			apply: func(d *ssd.DeviceParams, v float64) { d.PagesPerBlock = int(v) },
			get:   func(d *ssd.DeviceParams) float64 { return float64(d.PagesPerBlock) }},
		{Name: "PageCapacity", Kind: Discrete, Unit: "B", Tunable: true, Layout: true, Values: []float64{2048, 4096, 8192, 16384},
			apply: func(d *ssd.DeviceParams, v float64) { d.PageSizeBytes = int(v) },
			get:   func(d *ssd.DeviceParams) float64 { return float64(d.PageSizeBytes) }},

		// --- DRAM (continuous in the paper's sense).
		{Name: "DataCacheSize", Kind: Continuous, Unit: "MB", Tunable: true, Values: dataCache,
			apply: func(d *ssd.DeviceParams, v float64) { d.DataCacheBytes = mb(v) },
			get:   func(d *ssd.DeviceParams) float64 { return float64(d.DataCacheBytes >> 20) }},
		{Name: "CMTCapacity", Kind: Continuous, Unit: "MB", Tunable: true, Values: cmt,
			apply: func(d *ssd.DeviceParams, v float64) { d.CMTBytes = mb(v) },
			get:   func(d *ssd.DeviceParams) float64 { return float64(d.CMTBytes >> 20) }},

		// --- Channel and flash timing.
		{Name: "ChannelWidth", Kind: Discrete, Unit: "bit", Tunable: whatIf, Values: []float64{8, 16, 32},
			apply: func(d *ssd.DeviceParams, v float64) { d.ChannelWidthBit = int(v) },
			get:   func(d *ssd.DeviceParams) float64 { return float64(d.ChannelWidthBit) }},
		{Name: "ChannelTransferRate", Kind: Discrete, Unit: "MT/s", Tunable: whatIf, Values: rate,
			apply: func(d *ssd.DeviceParams, v float64) { d.ChannelMTps = v },
			get:   func(d *ssd.DeviceParams) float64 { return d.ChannelMTps }},
		{Name: "PageReadLatency", Kind: Discrete, Unit: "us", Tunable: whatIf, Values: read,
			apply: func(d *ssd.DeviceParams, v float64) { d.ReadLatency = us(v) },
			get:   func(d *ssd.DeviceParams) float64 { return float64(d.ReadLatency) / float64(time.Microsecond) }},
		{Name: "PageProgramLatency", Kind: Discrete, Unit: "us", Tunable: whatIf, Values: prog,
			apply: func(d *ssd.DeviceParams, v float64) { d.ProgramLatency = us(v) },
			get:   func(d *ssd.DeviceParams) float64 { return float64(d.ProgramLatency) / float64(time.Microsecond) }},
		{Name: "BlockEraseLatency", Kind: Discrete, Unit: "us", Tunable: whatIf, Values: erase,
			apply: func(d *ssd.DeviceParams, v float64) { d.EraseLatency = us(v) },
			get:   func(d *ssd.DeviceParams) float64 { return float64(d.EraseLatency) / float64(time.Microsecond) }},
		{Name: "SuspendProgramTime", Kind: Discrete, Unit: "us", Tunable: true, Values: []float64{10, 25, 50, 100},
			apply: func(d *ssd.DeviceParams, v float64) { d.SuspendProgram = us(v) },
			get:   func(d *ssd.DeviceParams) float64 { return float64(d.SuspendProgram) / float64(time.Microsecond) }},
		{Name: "SuspendEraseTime", Kind: Discrete, Unit: "us", Tunable: true, Values: []float64{25, 50, 100, 200},
			apply: func(d *ssd.DeviceParams, v float64) { d.SuspendErase = us(v) },
			get:   func(d *ssd.DeviceParams) float64 { return float64(d.SuspendErase) / float64(time.Microsecond) }},

		// --- Host interface.
		{Name: "QueueDepth", Kind: Discrete, Tunable: true, Values: []float64{1, 2, 4, 8, 16, 32, 64, 128, 256},
			apply: func(d *ssd.DeviceParams, v float64) { d.QueueDepth = int(v) },
			get:   func(d *ssd.DeviceParams) float64 { return float64(d.QueueDepth) }},
		{Name: "QueueCount", Kind: Discrete, Tunable: true, Values: []float64{1, 2, 4, 8, 16},
			apply: func(d *ssd.DeviceParams, v float64) { d.QueueCount = int(v) },
			get:   func(d *ssd.DeviceParams) float64 { return float64(d.QueueCount) }},
		{Name: "PCIeLanes", Kind: Discrete, Tunable: true, Values: pcieLanes,
			apply: func(d *ssd.DeviceParams, v float64) { d.PCIeLanes = int(v) },
			get:   func(d *ssd.DeviceParams) float64 { return float64(d.PCIeLanes) }},
		{Name: "PCIeLaneBandwidth", Kind: Discrete, Unit: "MB/s", Tunable: whatIf, Values: []float64{250, 500, 985, 1969},
			apply: func(d *ssd.DeviceParams, v float64) { d.PCIeLaneMBps = v },
			get:   func(d *ssd.DeviceParams) float64 { return d.PCIeLaneMBps }},

		// --- FTL and policies.
		{Name: "OverprovisioningRatio", Kind: Continuous, Tunable: true, Values: []float64{0.03, 0.05, 0.07, 0.10, 0.15, 0.20, 0.28},
			apply: func(d *ssd.DeviceParams, v float64) { d.OverprovisionRatio = v },
			get:   func(d *ssd.DeviceParams) float64 { return d.OverprovisionRatio }},
		{Name: "GCThreshold", Kind: Continuous, Unit: "%", Tunable: true, Values: []float64{2, 5, 10, 15, 20},
			apply: func(d *ssd.DeviceParams, v float64) { d.GCThresholdPct = v },
			get:   func(d *ssd.DeviceParams) float64 { return d.GCThresholdPct }},
		{Name: "StaticWearlevelingThreshold", Kind: Discrete, Tunable: true, Values: []float64{25, 50, 100, 200, 400},
			apply: func(d *ssd.DeviceParams, v float64) { d.WearLevelingThresh = int(v) },
			get:   func(d *ssd.DeviceParams) float64 { return float64(d.WearLevelingThresh) }},
		{Name: "PageMetadataCapacity", Kind: Discrete, Unit: "B", Tunable: true, Values: []float64{128, 224, 448, 896},
			apply: func(d *ssd.DeviceParams, v float64) { d.PageMetadataBytes = int(v) },
			get:   func(d *ssd.DeviceParams) float64 { return float64(d.PageMetadataBytes) }},
		{Name: "ZoneSize", Kind: Discrete, Unit: "MB", Tunable: true, Values: []float64{64, 128, 256, 512, 1024},
			apply: func(d *ssd.DeviceParams, v float64) { d.ZoneSizeMB = int(v) },
			get:   func(d *ssd.DeviceParams) float64 { return float64(d.ZoneSizeMB) }},
		{Name: "MaxOpenZones", Kind: Discrete, Tunable: true, Values: []float64{2, 4, 8, 16, 32},
			apply: func(d *ssd.DeviceParams, v float64) { d.MaxOpenZones = int(v) },
			get:   func(d *ssd.DeviceParams) float64 { return float64(d.MaxOpenZones) }},
		{Name: "WriteStreams", Kind: Discrete, Tunable: true, Values: []float64{2, 4, 8, 16},
			apply: func(d *ssd.DeviceParams, v float64) { d.WriteStreams = int(v) },
			get:   func(d *ssd.DeviceParams) float64 { return float64(d.WriteStreams) }},
		{Name: "BadBlockRatio", Kind: Continuous, Unit: "%", Tunable: true, Values: []float64{0.1, 0.5, 1, 2},
			apply: func(d *ssd.DeviceParams, v float64) { d.BadBlockPct = v },
			get:   func(d *ssd.DeviceParams) float64 { return d.BadBlockPct }},
		{Name: "ReadRetryLimit", Kind: Discrete, Tunable: true, Values: []float64{1, 2, 3, 5, 8},
			apply: func(d *ssd.DeviceParams, v float64) { d.ReadRetryLimit = int(v) },
			get:   func(d *ssd.DeviceParams) float64 { return float64(d.ReadRetryLimit) }},
		{Name: "CacheLineSize", Kind: Discrete, Unit: "KB", Tunable: true, Values: []float64{4, 8, 16, 32},
			apply: func(d *ssd.DeviceParams, v float64) { d.CacheLineBytes = int(v) << 10 },
			get:   func(d *ssd.DeviceParams) float64 { return float64(d.CacheLineBytes >> 10) }},
		{Name: "CMTEntrySize", Kind: Discrete, Unit: "B", Tunable: true, Values: []float64{4, 8, 16},
			apply: func(d *ssd.DeviceParams, v float64) { d.CMTEntryBytes = int(v) },
			get:   func(d *ssd.DeviceParams) float64 { return float64(d.CMTEntryBytes) }},
		{Name: "MappingGranularity", Kind: Discrete, Unit: "pages", Tunable: true, Values: []float64{1, 2, 4, 8},
			apply: func(d *ssd.DeviceParams, v float64) { d.MappingGranularity = int(v) },
			get:   func(d *ssd.DeviceParams) float64 { return float64(d.MappingGranularity) }},
		{Name: "WriteBufferFlushThreshold", Kind: Continuous, Unit: "%", Tunable: true, Values: []float64{50, 60, 70, 80, 90},
			apply: func(d *ssd.DeviceParams, v float64) { d.WriteBufferFlushPct = v },
			get:   func(d *ssd.DeviceParams) float64 { return d.WriteBufferFlushPct }},
		{Name: "ControllerClock", Kind: Discrete, Unit: "MHz", Tunable: true, Values: []float64{200, 300, 400, 500, 667, 800},
			apply: func(d *ssd.DeviceParams, v float64) { d.ControllerMHz = int(v) },
			get:   func(d *ssd.DeviceParams) float64 { return float64(d.ControllerMHz) }},
		{Name: "DRAMFrequency", Kind: Discrete, Unit: "MHz", Tunable: true, Values: []float64{400, 533, 667, 800, 1066, 1200},
			apply: func(d *ssd.DeviceParams, v float64) { d.DRAMMHz = int(v) },
			get:   func(d *ssd.DeviceParams) float64 { return float64(d.DRAMMHz) }},
		{Name: "DRAMBusWidth", Kind: Discrete, Unit: "bit", Tunable: true, Values: []float64{16, 32, 64},
			apply: func(d *ssd.DeviceParams, v float64) { d.DRAMBusBits = int(v) },
			get:   func(d *ssd.DeviceParams) float64 { return float64(d.DRAMBusBits) }},
		{Name: "ECCLatency", Kind: Discrete, Unit: "us", Tunable: whatIf, Values: []float64{2, 4, 8, 16},
			apply: func(d *ssd.DeviceParams, v float64) { d.ECCLatency = us(v) },
			get:   func(d *ssd.DeviceParams) float64 { return float64(d.ECCLatency) / float64(time.Microsecond) }},
		{Name: "FirmwareOverhead", Kind: Discrete, Unit: "us", Tunable: true, Values: []float64{1, 2, 3, 5, 8},
			apply: func(d *ssd.DeviceParams, v float64) { d.FirmwareOverhead = us(v) },
			get:   func(d *ssd.DeviceParams) float64 { return float64(d.FirmwareOverhead) / float64(time.Microsecond) }},

		// --- Booleans.
		boolParam("StaticWearleveling", func(d *ssd.DeviceParams, on bool) { d.StaticWearLeveling = on },
			func(d *ssd.DeviceParams) bool { return d.StaticWearLeveling }),
		boolParam("DynamicWearleveling", func(d *ssd.DeviceParams, on bool) { d.DynamicWearLeveling = on },
			func(d *ssd.DeviceParams) bool { return d.DynamicWearLeveling }),
		boolParam("CopybackEnabled", func(d *ssd.DeviceParams, on bool) { d.CopybackEnabled = on },
			func(d *ssd.DeviceParams) bool { return d.CopybackEnabled }),
		boolParam("SuspendEnabled", func(d *ssd.DeviceParams, on bool) { d.SuspendEnabled = on },
			func(d *ssd.DeviceParams) bool { return d.SuspendEnabled }),
		boolParam("ReadCacheEnabled", func(d *ssd.DeviceParams, on bool) { d.ReadCacheEnabled = on },
			func(d *ssd.DeviceParams) bool { return d.ReadCacheEnabled }),
		boolParam("IOMergingEnabled", func(d *ssd.DeviceParams, on bool) { d.IOMergingEnabled = on },
			func(d *ssd.DeviceParams) bool { return d.IOMergingEnabled }),
		boolParam("TransactionSchedOOO", func(d *ssd.DeviceParams, on bool) { d.TransactionSchedOOO = on },
			func(d *ssd.DeviceParams) bool { return d.TransactionSchedOOO }),
		boolParam("CompressionEnabled", func(d *ssd.DeviceParams, on bool) {},
			func(d *ssd.DeviceParams) bool { return false }),

		// --- Categoricals. Grid values and labels derive from the policy
		// registry in internal/ssd, so a policy added there shows up here
		// (and in CLI help, JSON, and the tuner) without further edits.
		catParam("PlaneAllocationScheme", ssd.AllocSchemeNames(), true,
			func(d *ssd.DeviceParams, v int) { d.PlaneAllocScheme = ssd.AllocScheme(v) },
			func(d *ssd.DeviceParams) int { return int(d.PlaneAllocScheme) }),
		catParam("CachePolicy", ssd.CachePolicyNames(), true,
			func(d *ssd.DeviceParams, v int) { d.CachePolicy = ssd.CachePolicy(v) },
			func(d *ssd.DeviceParams) int { return int(d.CachePolicy) }),
		catParam("GCPolicy", ssd.GCPolicyNames(), true,
			func(d *ssd.DeviceParams, v int) { d.GCPolicy = ssd.GCPolicy(v) },
			func(d *ssd.DeviceParams) int { return int(d.GCPolicy) }),
		catParam("HostInterfaceModel", ssd.HostIfcNames(), true,
			func(d *ssd.DeviceParams, v int) { d.HostIfcModel = ssd.HostIfc(v) },
			func(d *ssd.DeviceParams) int { return int(d.HostIfcModel) }),

		// --- Constrained (non-tunable) categoricals.
		catParam("Interface", ssd.InterfaceNames(), false,
			func(d *ssd.DeviceParams, v int) { d.HostInterface = ssd.Interface(v) },
			func(d *ssd.DeviceParams) int { return int(d.HostInterface) }),
		catParam("FlashType", ssd.FlashTypeNames(), false,
			func(d *ssd.DeviceParams, v int) { d.FlashType = ssd.FlashType(v) },
			func(d *ssd.DeviceParams) int { return int(d.FlashType) }),
	}

	s := &Space{Params: params, Cons: cons, index: make(map[string]int, len(params))}
	for i, p := range s.Params {
		s.index[p.Name] = i
	}
	return s
}

func boolParam(name string, set func(*ssd.DeviceParams, bool), get func(*ssd.DeviceParams) bool) Param {
	return Param{
		Name: name, Kind: Boolean, Tunable: true, Values: []float64{0, 1},
		apply: func(d *ssd.DeviceParams, v float64) { set(d, v >= 0.5) },
		get: func(d *ssd.DeviceParams) float64 {
			if get(d) {
				return 1
			}
			return 0
		},
	}
}

// catParam builds a categorical parameter whose grid indices are the
// registry wire values 0..n-1 and whose labels are the registry names.
func catParam(name string, labels []string, tunable bool, set func(*ssd.DeviceParams, int), get func(*ssd.DeviceParams) int) Param {
	values := make([]float64, len(labels))
	for i := range values {
		values[i] = float64(i)
	}
	return Param{
		Name: name, Kind: Categorical, Tunable: tunable, Values: values, Labels: labels,
		apply: func(d *ssd.DeviceParams, v float64) { set(d, int(v)) },
		get:   func(d *ssd.DeviceParams) float64 { return float64(get(d)) },
	}
}

// NumParams returns the parameter count (52).
func (s *Space) NumParams() int { return len(s.Params) }

// ParamIndex returns the index of a named parameter.
func (s *Space) ParamIndex(name string) (int, error) {
	i, ok := s.index[name]
	if !ok {
		return 0, fmt.Errorf("ssdconf: unknown parameter %q", name)
	}
	return i, nil
}

// Value returns the concrete value cfg selects for parameter i.
func (s *Space) Value(cfg Config, i int) float64 { return s.Params[i].Values[cfg[i]] }

// ValueByName returns the concrete value of a named parameter.
func (s *Space) ValueByName(cfg Config, name string) (float64, error) {
	i, err := s.ParamIndex(name)
	if err != nil {
		return 0, err
	}
	return s.Value(cfg, i), nil
}

// SetByName moves cfg's grid index for name to the closest grid point to
// value.
func (s *Space) SetByName(cfg Config, name string, value float64) error {
	i, err := s.ParamIndex(name)
	if err != nil {
		return err
	}
	cfg[i] = nearestIndex(s.Params[i].Values, value)
	return nil
}

// SearchSpaceSize returns the product of all tunable grid sizes.
func (s *Space) SearchSpaceSize() float64 {
	size := 1.0
	for _, p := range s.Params {
		if p.Tunable {
			size *= float64(len(p.Values))
		}
	}
	return size
}

// FromDevice snaps a concrete device to the nearest grid configuration.
func (s *Space) FromDevice(d ssd.DeviceParams) Config {
	cfg := make(Config, len(s.Params))
	for i, p := range s.Params {
		cfg[i] = nearestIndex(p.Values, p.get(&d))
	}
	// Constrained parameters always follow the constraints.
	s.applyConstraints(cfg)
	return cfg
}

// ToDevice materializes a simulator configuration from cfg. Fields not
// covered by the space (e.g. InitialOccupancyFrac) keep defaults.
func (s *Space) ToDevice(cfg Config) ssd.DeviceParams {
	d := ssd.DefaultParams()
	for i, p := range s.Params {
		p.apply(&d, p.Values[cfg[i]])
	}
	d.Faults = s.Faults
	return d
}

func (s *Space) applyConstraints(cfg Config) {
	if i, ok := s.index["Interface"]; ok {
		cfg[i] = int(s.Cons.Interface)
	}
	if i, ok := s.index["FlashType"]; ok {
		cfg[i] = int(s.Cons.Flash)
	}
}

func nearestIndex(grid []float64, v float64) int {
	best, bestD := 0, math.Inf(1)
	for i, g := range grid {
		if d := math.Abs(g - v); d < bestD {
			best, bestD = i, d
		}
	}
	return best
}
