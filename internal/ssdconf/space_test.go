package ssdconf

import (
	"math/rand"
	"testing"
	"testing/quick"

	"autoblox/internal/ssd"
)

func defaultSpace() *Space { return NewSpace(DefaultConstraints()) }

func TestSpaceHas52Params(t *testing.T) {
	s := defaultSpace()
	if s.NumParams() != 52 {
		t.Fatalf("NumParams = %d, want 52 (the paper's 48 plus the host-interface model params)", s.NumParams())
	}
	var numeric, boolean, categorical int
	for _, p := range s.Params {
		switch p.Kind {
		case Boolean:
			boolean++
		case Categorical:
			categorical++
		default:
			numeric++
		}
	}
	if numeric != 38 {
		t.Fatalf("numeric params = %d, want 38 (Fig. 4's 35 plus zone size, open-zone and stream counts)", numeric)
	}
	if boolean != 8 || categorical != 6 {
		t.Fatalf("boolean=%d categorical=%d, want 8/6 (HostInterfaceModel is categorical too)", boolean, categorical)
	}
}

// Every categorical parameter must expose the policy registry's label
// set verbatim: same length as its grid, and grid values 0..n-1 so grid
// index == registry wire value.
func TestCategoricalLabelsMatchRegistry(t *testing.T) {
	want := map[string][]string{
		"PlaneAllocationScheme": ssd.AllocSchemeNames(),
		"CachePolicy":           ssd.CachePolicyNames(),
		"GCPolicy":              ssd.GCPolicyNames(),
		"HostInterfaceModel":    ssd.HostIfcNames(),
		"Interface":             ssd.InterfaceNames(),
		"FlashType":             ssd.FlashTypeNames(),
	}
	s := defaultSpace()
	seen := 0
	for _, p := range s.Params {
		if p.Kind != Categorical {
			continue
		}
		seen++
		names, ok := want[p.Name]
		if !ok {
			t.Errorf("unexpected categorical %q", p.Name)
			continue
		}
		if len(p.Labels) != len(names) || len(p.Values) != len(names) {
			t.Errorf("%s: %d labels / %d values, registry has %d names", p.Name, len(p.Labels), len(p.Values), len(names))
			continue
		}
		for i, n := range names {
			if p.Labels[i] != n {
				t.Errorf("%s label[%d] = %q, registry says %q", p.Name, i, p.Labels[i], n)
			}
			if p.Values[i] != float64(i) {
				t.Errorf("%s value[%d] = %g, want %d", p.Name, i, p.Values[i], i)
			}
		}
	}
	if seen != len(want) {
		t.Fatalf("found %d categoricals, want %d", seen, len(want))
	}
}

func TestKindStrings(t *testing.T) {
	for k, want := range map[Kind]string{Continuous: "continuous", Discrete: "discrete", Boolean: "boolean", Categorical: "categorical"} {
		if k.String() != want {
			t.Fatalf("Kind(%d).String() = %q", k, k.String())
		}
	}
}

func TestSearchSpaceIsHuge(t *testing.T) {
	s := defaultSpace()
	if s.SearchSpaceSize() < 1e9 {
		t.Fatalf("search space %g should be in the billions", s.SearchSpaceSize())
	}
	w := NewWhatIfSpace(DefaultConstraints())
	if w.SearchSpaceSize() <= s.SearchSpaceSize() {
		t.Fatal("what-if space should be larger than commodity space")
	}
}

func TestRoundTripDevice(t *testing.T) {
	s := defaultSpace()
	base := ssd.Intel750()
	cfg := s.FromDevice(base)
	d := s.ToDevice(cfg)
	if d.Channels != base.Channels || d.ChipsPerChannel != base.ChipsPerChannel ||
		d.DiesPerChip != base.DiesPerChip || d.PlanesPerDie != base.PlanesPerDie {
		t.Fatalf("layout round trip failed: %d/%d/%d/%d", d.Channels, d.ChipsPerChannel, d.DiesPerChip, d.PlanesPerDie)
	}
	if d.HostInterface != ssd.NVMe || d.FlashType != ssd.MLC {
		t.Fatal("constraints not applied in FromDevice")
	}
	if d.DataCacheBytes != base.DataCacheBytes {
		t.Fatalf("DataCacheBytes %d != %d", d.DataCacheBytes, base.DataCacheBytes)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("materialized device invalid: %v", err)
	}
}

func TestIntel750SatisfiesDefaultConstraints(t *testing.T) {
	s := defaultSpace()
	cfg := s.FromDevice(ssd.Intel750())
	if err := s.CheckConstraints(cfg); err != nil {
		t.Fatalf("Intel 750 should satisfy 512GB/NVMe/MLC: %v", err)
	}
}

func TestValueAccessors(t *testing.T) {
	s := defaultSpace()
	cfg := s.FromDevice(ssd.Intel750())
	v, err := s.ValueByName(cfg, "FlashChannelCount")
	if err != nil || v != 12 {
		t.Fatalf("FlashChannelCount = %g, %v", v, err)
	}
	if _, err := s.ValueByName(cfg, "Nope"); err == nil {
		t.Fatal("expected unknown-parameter error")
	}
	if err := s.SetByName(cfg, "FlashChannelCount", 32); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.ValueByName(cfg, "FlashChannelCount"); v != 32 {
		t.Fatalf("SetByName failed: %g", v)
	}
}

func TestCheckConstraintsViolations(t *testing.T) {
	s := defaultSpace()
	cfg := s.FromDevice(ssd.Intel750())

	bad := cfg.Clone()
	i, _ := s.ParamIndex("Interface")
	bad[i] = int(ssd.SATA)
	if err := s.CheckConstraints(bad); err == nil {
		t.Fatal("interface violation undetected")
	}

	bad = cfg.Clone()
	i, _ = s.ParamIndex("FlashChannelCount")
	bad[i] = 0 // 1 channel: capacity collapses
	if err := s.CheckConstraints(bad); err == nil {
		t.Fatal("capacity violation undetected")
	}

	if err := s.CheckConstraints(cfg[:3]); err == nil {
		t.Fatal("length mismatch undetected")
	}
}

func TestRepairCapacity(t *testing.T) {
	s := defaultSpace()
	cfg := s.FromDevice(ssd.Intel750())
	i, _ := s.ParamIndex("FlashChannelCount")
	cfg[i] = len(s.Params[i].Values) - 1 // 32 channels: capacity overshoots
	if s.CapacityOK(cfg) {
		t.Skip("capacity unexpectedly OK")
	}
	if !s.RepairCapacity(cfg) {
		t.Fatal("repair failed for a repairable config")
	}
	if !s.CapacityOK(cfg) {
		t.Fatal("repair reported success but capacity still off")
	}
	if cfg[i] != len(s.Params[i].Values)-1 {
		t.Fatal("repair must not undo the tuned axis")
	}
}

func TestNeighborsRespectConstraints(t *testing.T) {
	s := defaultSpace()
	cfg := s.FromDevice(ssd.Intel750())
	ns := s.Neighbors(cfg)
	if len(ns) == 0 {
		t.Fatal("no neighbors found")
	}
	ifIdx, _ := s.ParamIndex("Interface")
	ftIdx, _ := s.ParamIndex("FlashType")
	for _, n := range ns {
		if err := s.CheckConstraints(n); err != nil {
			t.Fatalf("neighbor violates constraints: %v", err)
		}
		if n[ifIdx] != int(ssd.NVMe) || n[ftIdx] != int(ssd.MLC) {
			t.Fatal("neighbor changed a constrained parameter")
		}
		if Equal(n, cfg) {
			t.Fatal("neighbor equals origin")
		}
	}
}

func TestNeighborsOfSingleAxis(t *testing.T) {
	s := defaultSpace()
	cfg := s.FromDevice(ssd.Intel750())
	qd, _ := s.ParamIndex("QueueDepth")
	ns := s.NeighborsOf(cfg, qd)
	if len(ns) != 2 {
		t.Fatalf("interior grid point should have 2 neighbors, got %d", len(ns))
	}
	for _, n := range ns {
		diff := 0
		for i := range n {
			if n[i] != cfg[i] {
				diff++
			}
		}
		if diff != 1 {
			t.Fatalf("single-axis neighbor changed %d axes", diff)
		}
	}
	// Categorical axis enumerates all alternatives.
	alloc, _ := s.ParamIndex("PlaneAllocationScheme")
	ns = s.NeighborsOf(cfg, alloc)
	if len(ns) != ssd.NumAllocSchemes-1 {
		t.Fatalf("categorical neighbors = %d, want %d", len(ns), ssd.NumAllocSchemes-1)
	}
	// Non-tunable axis has none.
	ifIdx, _ := s.ParamIndex("Interface")
	if len(s.NeighborsOf(cfg, ifIdx)) != 0 {
		t.Fatal("non-tunable parameter should have no neighbors")
	}
}

func TestVectorEncoding(t *testing.T) {
	s := defaultSpace()
	cfg := s.FromDevice(ssd.Intel750())
	v := s.Vector(cfg)
	if len(v) != s.VectorLen() {
		t.Fatalf("vector len %d != VectorLen %d", len(v), s.VectorLen())
	}
	for i, x := range v {
		if x < 0 || x > 1 {
			t.Fatalf("vector[%d] = %g outside [0,1]", i, x)
		}
	}
	// One-hot blocks sum to 1 per categorical (alloc 16 + cache 4 +
	// gc 3 + interface 2 + flash 3 trailing slots).
	catLen := len(ssd.AllocSchemeNames()) + len(ssd.CachePolicyNames()) +
		len(ssd.GCPolicyNames()) + len(ssd.InterfaceNames()) + len(ssd.FlashTypeNames())
	var catSum float64
	for _, x := range v[len(v)-catLen:] {
		catSum += x
	}
	if catSum != 5 {
		t.Fatalf("categorical one-hot sum = %g, want 5", catSum)
	}
}

func TestManhattanDistance(t *testing.T) {
	s := defaultSpace()
	a := s.FromDevice(ssd.Intel750())
	if ManhattanDistance(s, a, a) != 0 {
		t.Fatal("self distance nonzero")
	}
	b := a.Clone()
	qd, _ := s.ParamIndex("QueueDepth")
	b[qd] += 2
	alloc, _ := s.ParamIndex("PlaneAllocationScheme")
	b[alloc] = (a[alloc] + 3) % ssd.NumAllocSchemes
	if d := ManhattanDistance(s, a, b); d != 3 {
		t.Fatalf("distance = %d, want 3 (2 numeric steps + 1 categorical)", d)
	}
}

func TestConfigKeyUnique(t *testing.T) {
	s := defaultSpace()
	a := s.FromDevice(ssd.Intel750())
	b := a.Clone()
	if a.Key() != b.Key() {
		t.Fatal("equal configs, different keys")
	}
	qd, _ := s.ParamIndex("QueueDepth")
	b[qd]++
	if a.Key() == b.Key() {
		t.Fatal("different configs, same key")
	}
}

func TestFlashTypeChangesLatencyGrids(t *testing.T) {
	slcCons := DefaultConstraints()
	slcCons.Flash = ssd.SLC
	slc := NewSpace(slcCons)
	mlc := defaultSpace()
	si, _ := slc.ParamIndex("PageReadLatency")
	mi, _ := mlc.ParamIndex("PageReadLatency")
	if slc.Params[si].Values[0] >= mlc.Params[mi].Values[0] {
		t.Fatal("SLC read-latency grid should start below MLC's")
	}
}

// Property: repaired random layout mutations stay inside the capacity
// band and keep the mutated axis.
func TestRepairProperty(t *testing.T) {
	s := defaultSpace()
	base := s.FromDevice(ssd.Intel750())
	layout := []string{"FlashChannelCount", "ChipNoPerChannel", "DieNoPerChip", "PlaneNoPerDie"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := base.Clone()
		name := layout[rng.Intn(len(layout))]
		i, _ := s.ParamIndex(name)
		cfg[i] = rng.Intn(len(s.Params[i].Values))
		want := cfg[i]
		if s.RepairCapacity(cfg) {
			return s.CapacityOK(cfg) && cfg[i] == want
		}
		return true // unrepairable is acceptable
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: ToDevice of any valid config yields a Validate-clean device.
func TestToDeviceAlwaysValidProperty(t *testing.T) {
	s := defaultSpace()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := make(Config, len(s.Params))
		for i, p := range s.Params {
			cfg[i] = rng.Intn(len(p.Values))
		}
		s.applyConstraints(cfg)
		d := s.ToDevice(cfg)
		return d.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestWhatIfSpaceStrides(t *testing.T) {
	w := NewWhatIfSpace(DefaultConstraints())
	i, _ := w.ParamIndex("PageProgramLatency")
	p := w.Params[i]
	if len(p.Values) < 100 {
		t.Skip("grid not fine in this configuration")
	}
	stride := p.Stride()
	if stride < 10 {
		t.Fatalf("fine grid stride %d too small to traverse in bounded moves", stride)
	}
	// A stride move changes the value meaningfully (>1% of the range).
	span := p.Values[len(p.Values)-1] - p.Values[0]
	if step := p.Values[stride] - p.Values[0]; step < span/100 {
		t.Fatalf("stride step %g too small vs span %g", step, span)
	}
	// Small grids keep stride 1.
	j, _ := w.ParamIndex("DieNoPerChip")
	if w.Params[j].Stride() != 1 {
		t.Fatalf("small grid stride = %d", w.Params[j].Stride())
	}
}

func TestWhatIfTunability(t *testing.T) {
	c := defaultSpace()
	w := NewWhatIfSpace(DefaultConstraints())
	// Flash-silicon parameters are constrained in commodity, tunable in
	// what-if.
	for _, name := range []string{"PageReadLatency", "PageProgramLatency", "BlockEraseLatency",
		"ChannelTransferRate", "ChannelWidth", "ECCLatency", "PCIeLaneBandwidth"} {
		ci, _ := c.ParamIndex(name)
		wi, _ := w.ParamIndex(name)
		if c.Params[ci].Tunable {
			t.Fatalf("%s should be fixed in the commodity space", name)
		}
		if !w.Params[wi].Tunable {
			t.Fatalf("%s should be tunable in the what-if space", name)
		}
	}
	// Layout axes are tunable in both.
	for _, name := range []string{"FlashChannelCount", "DataCacheSize", "QueueDepth"} {
		ci, _ := c.ParamIndex(name)
		if !c.Params[ci].Tunable {
			t.Fatalf("%s should be tunable in the commodity space", name)
		}
	}
}

func TestManhattanCountsStrideUnits(t *testing.T) {
	w := NewWhatIfSpace(DefaultConstraints())
	a := w.FromDevice(ssd.Intel750())
	b := a.Clone()
	i, _ := w.ParamIndex("PageProgramLatency")
	stride := w.Params[i].Stride()
	b[i] = a[i] - stride // one stride move
	if d := ManhattanDistance(w, a, b); d != 1 {
		t.Fatalf("one stride move should be distance 1, got %d", d)
	}
}
