package trace

import (
	"testing"
	"time"
)

func benchTrace(n int) *Trace {
	t := &Trace{Name: "bench"}
	for i := 0; i < n; i++ {
		t.Requests = append(t.Requests, Request{
			Arrival: time.Duration(i) * 50 * time.Microsecond,
			LBA:     uint64(i*37) % (1 << 30),
			Sectors: 16,
			Op:      Op(i % 2),
		})
	}
	return t
}

// BenchmarkWindowFeatures measures per-window feature extraction — the
// Table 6 "extract workload features" component.
func BenchmarkWindowFeatures(b *testing.B) {
	w := benchTrace(DefaultWindowSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		WindowFeatures(w)
	}
}

func BenchmarkWindows100K(b *testing.B) {
	tr := benchTrace(100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Windows(tr, DefaultWindowSize)
	}
}
