package trace

import (
	"math"
)

// DefaultWindowSize is the number of trace entries per characterization
// window. The paper uses 3,000 entries by default: fewer entries lose
// access patterns, more slow down the normalization/PCA/clustering
// pipeline.
const DefaultWindowSize = 3000

// NumWindowFeatures is the dimensionality of the per-window feature
// vector produced by WindowFeatures.
const NumWindowFeatures = 19

// Windows partitions the trace into consecutive windows of size entries;
// a trailing partial window is kept when it has at least size/2 entries.
func Windows(t *Trace, size int) []*Trace {
	if size <= 0 {
		size = DefaultWindowSize
	}
	var out []*Trace
	n := len(t.Requests)
	for lo := 0; lo < n; lo += size {
		hi := lo + size
		if hi > n {
			if n-lo < size/2 && lo != 0 {
				break
			}
			hi = n
		}
		out = append(out, t.Slice(lo, hi))
	}
	return out
}

// WindowFeatures reduces one window to a fixed-length numeric vector.
//
// The paper normalizes each window's timestamp, size, address and op
// fields against the window's starting entry and feeds the normalized
// window through PCA. A raw 3,000×4 window is 12,000 dimensions; we apply
// the same normalization and summarize each window with 19 statistics of
// exactly the fields the paper names (relative timestamps → intensity and
// burstiness, relative addresses → sequentiality, jump magnitudes and
// locality, sizes, and op mix including trim/discard), then PCA reduces
// those to 5 dimensions.
// Monotonic addresses and small time gaps remain separable exactly as in
// §3.1's examples.
func WindowFeatures(w *Trace) []float64 {
	f := make([]float64, NumWindowFeatures)
	n := len(w.Requests)
	if n == 0 {
		return f
	}
	first := w.Requests[0]

	var (
		reads, trims, seq, nearSeq, increasing int
		readBytes, writeBytes                  float64
		sizes                                  = make([]float64, 0, n)
		gaps                                   = make([]float64, 0, n-1)
		jumps                                  = make([]float64, 0, n-1)
		minLBA, maxLBA                         = w.Requests[0].LBA, w.Requests[0].LBA
	)
	// Histogram over the window's relative address span for entropy.
	const bins = 16
	hist := make([]float64, bins)

	prevEnd := first.LBA + uint64(first.Sectors)
	prevArrival := first.Arrival
	prevLBA := first.LBA
	for i, r := range w.Requests {
		switch r.Op {
		case Read:
			reads++
			readBytes += float64(r.Bytes())
		case Trim:
			trims++ // no data transfer: excluded from byte totals
		default:
			writeBytes += float64(r.Bytes())
		}
		sizes = append(sizes, float64(r.Sectors))
		if r.LBA < minLBA {
			minLBA = r.LBA
		}
		if r.LBA > maxLBA {
			maxLBA = r.LBA
		}
		if i > 0 {
			gaps = append(gaps, r.Arrival.Seconds()-prevArrival.Seconds())
			var jump float64
			if r.LBA >= prevEnd {
				jump = float64(r.LBA - prevEnd)
			} else {
				jump = -float64(prevEnd - r.LBA)
			}
			jumps = append(jumps, math.Abs(jump))
			if jump == 0 {
				seq++
			}
			if math.Abs(jump) < 256 {
				nearSeq++
			}
			if r.LBA > prevLBA {
				increasing++
			}
			prevArrival = r.Arrival
			prevEnd = r.LBA + uint64(r.Sectors)
			prevLBA = r.LBA
		}
	}
	span := float64(maxLBA - minLBA)
	if span <= 0 {
		span = 1
	}
	for _, r := range w.Requests {
		b := int(float64(r.LBA-minLBA) / span * float64(bins))
		if b >= bins {
			b = bins - 1
		}
		hist[b]++
	}

	meanSize, stdSize := meanStd(sizes)
	meanGap, stdGap := meanStd(gaps)
	meanJump, stdJump := meanStd(jumps)
	dur := w.Requests[n-1].Arrival.Seconds() - first.Arrival.Seconds()
	if dur <= 0 {
		dur = 1e-9
	}
	pairs := float64(maxInt(n-1, 1))

	f[0] = float64(reads) / float64(n)                    // read ratio
	f[1] = math.Log1p(meanSize)                           // mean I/O size (sectors)
	f[2] = math.Log1p(stdSize)                            // size dispersion
	f[3] = math.Log1p(meanGap * 1e6)                      // mean inter-arrival (µs)
	f[4] = math.Log1p(stdGap * 1e6)                       // arrival burstiness
	f[5] = float64(seq) / pairs                           // strictly sequential fraction
	f[6] = float64(nearSeq) / pairs                       // near-sequential fraction
	f[7] = math.Log1p(meanJump)                           // mean |address jump|
	f[8] = math.Log1p(stdJump)                            // jump dispersion
	f[9] = math.Log1p(span)                               // address span
	f[10] = float64(increasing) / pairs                   // monotonicity
	f[11] = entropy(hist)                                 // spatial entropy
	f[12] = math.Log1p(float64(n) / dur)                  // IOPS
	f[13] = math.Log1p((readBytes + writeBytes) / dur)    // bytes/sec
	f[14] = safeDiv(writeBytes, readBytes+writeBytes)     // write-byte fraction
	f[15] = safeDiv(meanJump, span)                       // relative jump scale
	f[16] = burstFraction(gaps, meanGap)                  // fraction of bursty gaps
	f[17] = safeDiv(readBytes, float64(maxInt(reads, 1))) // mean read bytes
	if reads > 0 {
		f[17] = math.Log1p(f[17])
	}
	f[18] = float64(trims) / float64(n) // trim/discard fraction
	return f
}

// FeatureMatrix converts windows to a feature matrix suitable for PCA:
// one row per window.
func FeatureMatrix(windows []*Trace) [][]float64 {
	out := make([][]float64, len(windows))
	for i, w := range windows {
		out[i] = WindowFeatures(w)
	}
	return out
}

// ScanWindows rewinds the source and visits its characterization windows
// in one pass, holding only a single window (size requests) in memory at
// a time. The window passed to fn is reused between calls — copy it if
// it must outlive the callback. Window boundaries and the trailing
// partial-window rule match Windows exactly: the trailing partial is
// kept when it is the only window or has at least size/2 entries.
func ScanWindows(src Source, size int, fn func(w *Trace) error) error {
	if size <= 0 {
		size = DefaultWindowSize
	}
	src.Reset()
	w := &Trace{Name: src.Name(), Requests: make([]Request, 0, size)}
	full := 0
	for {
		r, ok := src.Next()
		if !ok {
			break
		}
		w.Requests = append(w.Requests, r)
		if len(w.Requests) == size {
			if err := fn(w); err != nil {
				return err
			}
			full++
			w.Requests = w.Requests[:0]
		}
	}
	if err := src.Err(); err != nil {
		return err
	}
	if n := len(w.Requests); n > 0 && (full == 0 || n >= size/2) {
		return fn(w)
	}
	return nil
}

// FeatureMatrixSource is FeatureMatrix over a stream: one feature row per
// window, computed in a single pass without materializing the trace.
func FeatureMatrixSource(src Source, size int) ([][]float64, error) {
	var out [][]float64
	err := ScanWindows(src, size, func(w *Trace) error {
		out = append(out, WindowFeatures(w))
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func meanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		std += (x - mean) * (x - mean)
	}
	std = math.Sqrt(std / float64(len(xs)))
	return mean, std
}

func entropy(hist []float64) float64 {
	var total float64
	for _, h := range hist {
		total += h
	}
	if total == 0 {
		return 0
	}
	var e float64
	for _, h := range hist {
		if h > 0 {
			p := h / total
			e -= p * math.Log2(p)
		}
	}
	return e
}

func burstFraction(gaps []float64, mean float64) float64 {
	if len(gaps) == 0 || mean <= 0 {
		return 0
	}
	var bursts int
	for _, g := range gaps {
		if g < 0.1*mean {
			bursts++
		}
	}
	return float64(bursts) / float64(len(gaps))
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
