package trace

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// FuzzParseBlktrace fuzzes the text-format parser and pins the
// parse↔write round trip: any input ParseBlktrace accepts must survive a
// write→parse→write cycle with byte-identical second output (the written
// form is the fixed point of %.6f timestamp quantization), and the
// streaming reader must agree with the buffered parser on the sorted
// output it emits.
func FuzzParseBlktrace(f *testing.F) {
	f.Add("0.000000 100 8 R\n1.500000 200 16 W\n")
	f.Add("# workload: x\r\n\r\n0.5 100 8 W\n# c\n1.5 200 8 read\n")
	f.Add("2.0 5 4 R\n1.0 9 2 W\n") // unsorted: Parse sorts, streaming errors
	f.Add("")
	f.Add("-3.25 18446744073709551615 4294967295 WRITE\n")
	f.Add("0.000000 100 8 D\n0.5 200 64 discard\n1.0 300 8 TRIM\n")
	f.Add("0.1 100 8 W 3\n0.2 200 8 R 2\n0.3 300 16 D 1\n") // 5-field stream tags
	f.Add("0.1 1 1 W 4294967296\n")                         // stream tag out of uint32 range
	f.Add("1e300 1 1 R\n")                                  // timestamp out of range: must be rejected
	f.Add("nan 1 1 R\n")
	f.Add("0.1 1 1 R")

	f.Fuzz(func(t *testing.T, input string) {
		tr, err := ParseBlktrace(strings.NewReader(input))
		if err != nil {
			return // invalid input is fine; not crashing is the property
		}
		// Arrivals must come out sorted whatever the input order was.
		for i := 1; i < len(tr.Requests); i++ {
			if tr.Requests[i].Arrival < tr.Requests[i-1].Arrival {
				t.Fatalf("ParseBlktrace output unsorted at %d", i)
			}
		}

		var first bytes.Buffer
		if err := WriteBlktrace(&first, tr); err != nil {
			t.Fatalf("write: %v", err)
		}
		reparsed, err := ParseBlktrace(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("reparse of own output: %v\noutput:\n%s", err, first.String())
		}
		if len(reparsed.Requests) != len(tr.Requests) {
			t.Fatalf("reparse count %d != %d", len(reparsed.Requests), len(tr.Requests))
		}
		// %.6f quantizes timestamps, so compare at the fixed point: the
		// second write must reproduce the first byte for byte.
		var second bytes.Buffer
		if err := WriteBlktrace(&second, reparsed); err != nil {
			t.Fatalf("second write: %v", err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("write→parse→write not a fixed point:\nfirst:\n%s\nsecond:\n%s",
				first.String(), second.String())
		}

		// The emitted form is sorted, so the streaming reader must accept
		// it and agree with the buffered parser exactly.
		streamed, err := Materialize(NewBlktraceSource(bytes.NewReader(first.Bytes()), tr.Name))
		if err != nil {
			t.Fatalf("streaming reader rejected sorted output: %v", err)
		}
		if !reflect.DeepEqual(streamed.Requests, reparsed.Requests) {
			t.Fatal("streaming reader differs from buffered parser on sorted input")
		}
	})
}
