package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"
)

// ParseMSR reads the MSR-Cambridge CSV trace format, the most common
// public block-trace corpus (and one of the families behind the paper's
// enterprise workloads):
//
//	Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime
//
// Timestamp is in Windows filetime (100ns ticks); Type is "Read" or
// "Write"; Offset and Size are in bytes. Lines that do not parse are
// rejected with their line number. The returned trace is sorted by
// arrival and rebased so the first request arrives at t=0.
func ParseMSR(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	tr := &Trace{}
	lineNo := 0
	var base int64 = -1
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, ",")
		if len(fields) < 6 {
			return nil, fmt.Errorf("trace: msr line %d: want >=6 fields, got %d", lineNo, len(fields))
		}
		ts, err := strconv.ParseInt(strings.TrimSpace(fields[0]), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: msr line %d: bad timestamp %q: %w", lineNo, fields[0], err)
		}
		var op Op
		switch strings.ToLower(strings.TrimSpace(fields[3])) {
		case "read", "r":
			op = Read
		case "write", "w":
			op = Write
		default:
			return nil, fmt.Errorf("trace: msr line %d: bad type %q", lineNo, fields[3])
		}
		offset, err := strconv.ParseUint(strings.TrimSpace(fields[4]), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: msr line %d: bad offset %q: %w", lineNo, fields[4], err)
		}
		size, err := strconv.ParseUint(strings.TrimSpace(fields[5]), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: msr line %d: bad size %q: %w", lineNo, fields[5], err)
		}
		if size == 0 {
			continue // zero-length requests appear in some captures
		}
		if base < 0 {
			base = ts
		}
		// Windows filetime ticks are 100ns.
		arrival := time.Duration(ts-base) * 100 * time.Nanosecond
		sectors := (size + 511) / 512
		if sectors > 1<<31 {
			return nil, fmt.Errorf("trace: msr line %d: size %d too large", lineNo, size)
		}
		tr.Requests = append(tr.Requests, Request{
			Arrival: arrival,
			LBA:     offset / 512,
			Sectors: uint32(sectors),
			Op:      op,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: msr scan: %w", err)
	}
	sort.SliceStable(tr.Requests, func(i, j int) bool {
		return tr.Requests[i].Arrival < tr.Requests[j].Arrival
	})
	// Rebase after sorting in case the capture was out of order.
	if len(tr.Requests) > 0 {
		base := tr.Requests[0].Arrival
		for i := range tr.Requests {
			tr.Requests[i].Arrival -= base
		}
	}
	return tr, nil
}

// Stats summarizes a trace for quick inspection (tracegen -stats and the
// docs).
type Stats struct {
	Requests     int
	Duration     time.Duration
	ReadFraction float64
	TotalBytes   uint64
	MeanBytes    float64
	OfferedBps   float64
	SpanBytes    uint64
	Sequential   float64 // fraction of strictly sequential successors
}

// ComputeStats derives summary statistics from a trace.
func ComputeStats(t *Trace) Stats {
	s := Stats{Requests: len(t.Requests)}
	if s.Requests == 0 {
		return s
	}
	s.Duration = t.Duration()
	s.ReadFraction = t.ReadFraction()
	s.TotalBytes = t.TotalBytes()
	s.MeanBytes = float64(s.TotalBytes) / float64(s.Requests)
	if secs := s.Duration.Seconds(); secs > 0 {
		s.OfferedBps = float64(s.TotalBytes) / secs
	}
	minLBA, maxEnd := t.Requests[0].LBA, uint64(0)
	seq := 0
	var prevEnd uint64
	for i, r := range t.Requests {
		if r.LBA < minLBA {
			minLBA = r.LBA
		}
		if end := r.LBA + uint64(r.Sectors); end > maxEnd {
			maxEnd = end
		}
		if i > 0 && r.LBA == prevEnd {
			seq++
		}
		prevEnd = r.LBA + uint64(r.Sectors)
	}
	s.SpanBytes = (maxEnd - minLBA) * 512
	if s.Requests > 1 {
		s.Sequential = float64(seq) / float64(s.Requests-1)
	}
	return s
}

// ComputeStatsSource rewinds the source and derives the same summary
// statistics as ComputeStats in one streaming pass.
func ComputeStatsSource(src Source) (Stats, error) {
	src.Reset()
	var (
		s        Stats
		reads    int
		minLBA   uint64
		maxEnd   uint64
		seq      int
		prevEnd  uint64
		lastSeen time.Duration
	)
	for {
		r, ok := src.Next()
		if !ok {
			break
		}
		if s.Requests == 0 {
			minLBA = r.LBA
		} else if r.LBA == prevEnd {
			seq++
		}
		if r.LBA < minLBA {
			minLBA = r.LBA
		}
		if end := r.LBA + uint64(r.Sectors); end > maxEnd {
			maxEnd = end
		}
		prevEnd = r.LBA + uint64(r.Sectors)
		lastSeen = r.Arrival
		if r.Op == Read {
			reads++
		}
		s.TotalBytes += r.Bytes()
		s.Requests++
	}
	if err := src.Err(); err != nil {
		return Stats{}, err
	}
	if s.Requests == 0 {
		return s, nil
	}
	s.Duration = lastSeen
	s.ReadFraction = float64(reads) / float64(s.Requests)
	s.MeanBytes = float64(s.TotalBytes) / float64(s.Requests)
	if secs := s.Duration.Seconds(); secs > 0 {
		s.OfferedBps = float64(s.TotalBytes) / secs
	}
	s.SpanBytes = (maxEnd - minLBA) * 512
	if s.Requests > 1 {
		s.Sequential = float64(seq) / float64(s.Requests-1)
	}
	return s, nil
}

// String renders the stats on one line.
func (s Stats) String() string {
	return fmt.Sprintf("%d reqs over %v: %.1f%% read, %.1f KB mean, %.1f MB/s offered, span %.1f GB, %.1f%% sequential",
		s.Requests, s.Duration.Round(time.Millisecond), s.ReadFraction*100,
		s.MeanBytes/1024, s.OfferedBps/1e6, float64(s.SpanBytes)/1e9, s.Sequential*100)
}
