package trace

import (
	"strings"
	"testing"
	"time"
)

const msrSample = `128166372003061629,hm_0,1,Read,383496192,32768,551572
128166372016382155,hm_0,1,Write,2822144,4096,56280
128166372026382245,hm_0,1,Read,2825216,4096,51874
`

func TestParseMSR(t *testing.T) {
	tr, err := ParseMSR(strings.NewReader(msrSample))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Requests) != 3 {
		t.Fatalf("requests = %d", len(tr.Requests))
	}
	r0 := tr.Requests[0]
	if r0.Arrival != 0 {
		t.Fatalf("first arrival should be rebased to 0, got %v", r0.Arrival)
	}
	if r0.Op != Read || r0.LBA != 383496192/512 || r0.Sectors != 64 {
		t.Fatalf("first request wrong: %+v", r0)
	}
	// Second arrival: (ts1-ts0) * 100ns.
	wantGap := time.Duration(128166372016382155-128166372003061629) * 100 * time.Nanosecond
	if tr.Requests[1].Arrival != wantGap {
		t.Fatalf("arrival gap = %v, want %v", tr.Requests[1].Arrival, wantGap)
	}
	if tr.Requests[1].Op != Write {
		t.Fatal("second op should be write")
	}
}

func TestParseMSRErrors(t *testing.T) {
	cases := []string{
		"1,h,1,Read,100",         // too few fields
		"x,h,1,Read,100,4096,1",  // bad ts
		"1,h,1,Erase,100,4096,1", // bad type
		"1,h,1,Read,x,4096,1",    // bad offset
		"1,h,1,Read,100,x,1",     // bad size
	}
	for _, c := range cases {
		if _, err := ParseMSR(strings.NewReader(c)); err == nil {
			t.Fatalf("expected error for %q", c)
		}
	}
	// Zero-size requests are skipped, comments ignored.
	tr, err := ParseMSR(strings.NewReader("# c\n1,h,1,Read,512,0,1\n2,h,1,Write,512,4096,1\n"))
	if err != nil || len(tr.Requests) != 1 {
		t.Fatalf("skip/comment handling: %v %v", tr, err)
	}
}

func TestParseMSRSortsAndRebases(t *testing.T) {
	// Out-of-order capture.
	in := "2000,h,1,Read,1024,512,1\n1000,h,1,Read,512,512,1\n"
	tr, err := ParseMSR(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Requests[0].LBA != 1 || tr.Requests[0].Arrival != 0 {
		t.Fatalf("sort/rebase failed: %+v", tr.Requests[0])
	}
}

func TestComputeStats(t *testing.T) {
	tr := mkTrace(100, Read) // sequential 4KB reads, 1ms apart
	s := ComputeStats(tr)
	if s.Requests != 100 || s.ReadFraction != 1 {
		t.Fatalf("stats basics: %+v", s)
	}
	if s.Sequential < 0.99 {
		t.Fatalf("sequential fraction %g for a sequential trace", s.Sequential)
	}
	if s.MeanBytes != 4096 {
		t.Fatalf("mean bytes %g", s.MeanBytes)
	}
	if s.OfferedBps <= 0 || s.SpanBytes == 0 {
		t.Fatalf("offered/span missing: %+v", s)
	}
	if !strings.Contains(s.String(), "100 reqs") {
		t.Fatalf("String() = %q", s.String())
	}
	if ComputeStats(&Trace{}).Requests != 0 {
		t.Fatal("empty stats")
	}
}

// FuzzParseBlktrace lives in fuzz_test.go; it additionally round-trips
// accepted inputs through WriteBlktrace and the streaming reader.

func FuzzParseMSR(f *testing.F) {
	f.Add(msrSample)
	f.Add("1,h,1,Read,512,4096,1\n")
	f.Fuzz(func(t *testing.T, input string) {
		tr, err := ParseMSR(strings.NewReader(input))
		if err != nil {
			return
		}
		for i, r := range tr.Requests {
			if r.Sectors == 0 {
				t.Fatal("zero-sector request emitted")
			}
			if i > 0 && r.Arrival < tr.Requests[i-1].Arrival {
				t.Fatal("unsorted output")
			}
		}
		if len(tr.Requests) > 0 && tr.Requests[0].Arrival != 0 {
			t.Fatal("not rebased")
		}
	})
}
