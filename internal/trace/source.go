package trace

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
	"time"
)

// Source is a rewindable streaming cursor over a request sequence — the
// constant-memory counterpart of a materialized *Trace. Consumers pull
// requests one at a time with Next and may rewind with Reset; a
// generator-backed source re-derives the stream from its seed, a
// file-backed source re-seeks, so neither ever holds the whole trace in
// memory.
//
// Contract:
//   - Next returns the next request in arrival order and true, or a zero
//     Request and false at end of stream (or on error — check Err).
//   - Reset restores the source to its initial position and clears any
//     prior error. A fresh source starts at position zero, and Reset is
//     idempotent there. Full-sweep consumers (Materialize, ScanWindows,
//     Simulator.RunSource, ...) call Reset before iterating.
//   - Err reports the first error since construction or the last Reset;
//     it is nil after a clean end of stream.
//   - Determinism: two sweeps separated by Reset yield bit-for-bit
//     identical request sequences. This is what lets the simulator's
//     warm-up and measured passes consume two Reset-separated sweeps and
//     still match the materialized path exactly.
//
// A Source is a stateful cursor and must not be shared across
// goroutines; hand each worker its own source via a SourceFactory.
type Source interface {
	// Name identifies the trace (cluster bookkeeping, report labels).
	Name() string
	// Next returns the next request, or false at end of stream/error.
	Next() (Request, bool)
	// Reset rewinds to the beginning of the stream.
	Reset()
	// Err reports the first error since construction or the last Reset.
	Err() error
}

// SourceFactory produces independent cursors over the same request
// sequence. Parallel validation workers each call the factory once, so
// no cursor state is ever shared and no worker holds a duplicate
// materialized trace.
type SourceFactory func() Source

// sliceSource is a cursor over a materialized trace; it shares the
// request slice (zero copy).
type sliceSource struct {
	name string
	reqs []Request
	pos  int
}

// Source returns a streaming cursor over the trace. The cursor shares
// the underlying request slice; the trace must not be mutated while the
// cursor is live.
func (t *Trace) Source() Source {
	return &sliceSource{name: t.Name, reqs: t.Requests}
}

// Factory returns a SourceFactory of independent cursors over the trace.
func (t *Trace) Factory() SourceFactory {
	return func() Source { return t.Source() }
}

func (s *sliceSource) Name() string { return s.name }
func (s *sliceSource) Err() error   { return nil }
func (s *sliceSource) Reset()       { s.pos = 0 }
func (s *sliceSource) Next() (Request, bool) {
	if s.pos >= len(s.reqs) {
		return Request{}, false
	}
	r := s.reqs[s.pos]
	s.pos++
	return r, true
}

// Materialize rewinds the source and drains it into a Trace — the
// escape hatch for consumers that genuinely need random access (PCA
// training data assembly, the 70/30 Split, legacy call sites).
func Materialize(s Source) (*Trace, error) {
	s.Reset()
	tr := &Trace{Name: s.Name()}
	for {
		r, ok := s.Next()
		if !ok {
			break
		}
		tr.Requests = append(tr.Requests, r)
	}
	if err := s.Err(); err != nil {
		return nil, err
	}
	return tr, nil
}

// sliceStream yields requests [lo, hi) of the underlying stream — the
// stream adapter form of (*Trace).Slice.
type sliceStream struct {
	src    Source
	lo, hi int
	pos    int
}

// SliceStream adapts a source to the sub-stream of requests [lo, hi).
func SliceStream(src Source, lo, hi int) Source {
	return &sliceStream{src: src, lo: lo, hi: hi}
}

func (s *sliceStream) Name() string { return s.src.Name() }
func (s *sliceStream) Err() error   { return s.src.Err() }
func (s *sliceStream) Reset()       { s.src.Reset(); s.pos = 0 }
func (s *sliceStream) Next() (Request, bool) {
	for s.pos < s.lo {
		if _, ok := s.src.Next(); !ok {
			return Request{}, false
		}
		s.pos++
	}
	if s.pos >= s.hi {
		return Request{}, false
	}
	r, ok := s.src.Next()
	if !ok {
		return Request{}, false
	}
	s.pos++
	return r, true
}

// compressStream divides arrivals by a factor — the stream adapter form
// of (*Trace).Compress (and workload.Scale).
type compressStream struct {
	src    Source
	factor float64
}

// CompressStream adapts a source so every arrival time is divided by
// factor, with the same semantics as (*Trace).Compress: factors <= 0
// fall back to 1.
func CompressStream(src Source, factor float64) Source {
	if factor <= 0 {
		factor = 1
	}
	return &compressStream{src: src, factor: factor}
}

func (c *compressStream) Name() string { return c.src.Name() }
func (c *compressStream) Err() error   { return c.src.Err() }
func (c *compressStream) Reset()       { c.src.Reset() }
func (c *compressStream) Next() (Request, bool) {
	r, ok := c.src.Next()
	if !ok {
		return Request{}, false
	}
	r.Arrival = time.Duration(float64(r.Arrival) / c.factor)
	return r, true
}

// normalizeStream rebases LBAs against the stream's minimum — the
// stream adapter form of (*Trace).Normalize. The minimum is discovered
// with one extra sweep on first use (regenerable sources make the sweep
// cheap) and cached: determinism guarantees later sweeps would find the
// same value.
type normalizeStream struct {
	src     Source
	min     uint64
	scanned bool
}

// NormalizeStream adapts a source so block addresses become offsets from
// the smallest address in the stream (§3.1's normalization).
func NormalizeStream(src Source) Source {
	return &normalizeStream{src: src}
}

func (n *normalizeStream) Name() string { return n.src.Name() }
func (n *normalizeStream) Err() error   { return n.src.Err() }
func (n *normalizeStream) Reset()       { n.src.Reset() }
func (n *normalizeStream) Next() (Request, bool) {
	if !n.scanned {
		n.src.Reset()
		first := true
		for {
			r, ok := n.src.Next()
			if !ok {
				break
			}
			if first || r.LBA < n.min {
				n.min = r.LBA
				first = false
			}
		}
		if n.src.Err() != nil {
			return Request{}, false
		}
		n.src.Reset()
		n.scanned = true
	}
	r, ok := n.src.Next()
	if !ok {
		return Request{}, false
	}
	r.LBA -= n.min
	return r, true
}

// mergeSources is a k-way arrival-order merge of sorted sources.
type mergeSources struct {
	name   string
	srcs   []Source
	head   []Request
	have   []bool
	done   []bool
	tagged bool
}

// MergeSources interleaves several arrival-sorted sources into one
// arrival-sorted stream (ties go to the lower source index). It is the
// streaming counterpart of concatenating traces and re-sorting.
func MergeSources(name string, srcs ...Source) Source {
	return &mergeSources{
		name: name,
		srcs: srcs,
		head: make([]Request, len(srcs)),
		have: make([]bool, len(srcs)),
		done: make([]bool, len(srcs)),
	}
}

// MergeSourcesTagged is MergeSources with per-tenant stream tagging:
// every request from srcs[i] carries Stream = i+1, so a multi-stream
// host interface can route each tenant's writes to disjoint flash
// blocks. Tags start at 1 because 0 means "untagged".
//
// Tenant LBA spaces are left untouched, so tenants whose traces address
// overlapping LBA ranges alias each other's logical blocks — reads from
// one tenant observe another tenant's writes. Some workloads rely on
// that (a scan tenant sweeping over data other tenants wrote); tenants
// that model isolated hosts sharing one device want
// MergeSourcesPartitioned instead.
func MergeSourcesTagged(name string, srcs ...Source) Source {
	m := MergeSources(name, srcs...).(*mergeSources)
	m.tagged = true
	return m
}

// partitionSources is MergeSourcesTagged plus per-tenant LBA
// partitioning: tenant i's addresses are rebased by the summed spans of
// tenants 0..i-1, so no two tenants ever touch the same logical block.
type partitionSources struct {
	merge   *mergeSources
	offset  []uint64
	scanned bool
}

// MergeSourcesPartitioned interleaves arrival-sorted tenant sources
// like MergeSourcesTagged (Stream = source index + 1, ties to the lower
// index) and additionally maps each tenant onto a disjoint slice of the
// logical address space: tenant i's LBAs are shifted up by the summed
// address spans (max LBA + request length) of tenants 0..i-1. This
// models independent hosts multiplexed onto one device — no tenant can
// alias another's data. The spans are discovered with one extra sweep
// per source on first use and cached; determinism guarantees later
// sweeps would find the same values.
func MergeSourcesPartitioned(name string, srcs ...Source) Source {
	m := MergeSourcesTagged(name, srcs...).(*mergeSources)
	return &partitionSources{merge: m, offset: make([]uint64, len(srcs))}
}

func (p *partitionSources) Name() string { return p.merge.Name() }
func (p *partitionSources) Err() error   { return p.merge.Err() }
func (p *partitionSources) Reset()       { p.merge.Reset() }

// scan measures each tenant's address span and derives the cumulative
// offsets. It leaves every source freshly Reset.
func (p *partitionSources) scan() bool {
	var next uint64
	for i, s := range p.merge.srcs {
		p.offset[i] = next
		s.Reset()
		var span uint64
		for {
			r, ok := s.Next()
			if !ok {
				break
			}
			if end := r.LBA + uint64(r.Sectors); end > span {
				span = end
			}
		}
		if s.Err() != nil {
			return false
		}
		s.Reset()
		next += span
	}
	p.scanned = true
	return true
}

func (p *partitionSources) Next() (Request, bool) {
	if !p.scanned {
		if !p.scan() {
			return Request{}, false
		}
		// The span sweep consumed the sources; rewind the merge state so
		// the first post-scan Next starts from the beginning.
		p.merge.Reset()
	}
	r, ok := p.merge.Next()
	if !ok {
		return Request{}, false
	}
	r.LBA += p.offset[r.Stream-1]
	return r, true
}

func (m *mergeSources) Name() string { return m.name }
func (m *mergeSources) Err() error {
	for _, s := range m.srcs {
		if err := s.Err(); err != nil {
			return err
		}
	}
	return nil
}
func (m *mergeSources) Reset() {
	for i, s := range m.srcs {
		s.Reset()
		m.have[i], m.done[i] = false, false
	}
}
func (m *mergeSources) Next() (Request, bool) {
	best := -1
	for i, s := range m.srcs {
		if m.done[i] {
			continue
		}
		if !m.have[i] {
			r, ok := s.Next()
			if !ok {
				m.done[i] = true
				continue
			}
			m.head[i], m.have[i] = r, true
		}
		if best < 0 || m.head[i].Arrival < m.head[best].Arrival {
			best = i
		}
	}
	if best < 0 {
		return Request{}, false
	}
	m.have[best] = false
	r := m.head[best]
	if m.tagged {
		r.Stream = uint32(best) + 1
	}
	return r, true
}

// maxTraceSeconds bounds parsed timestamps so the seconds→nanoseconds
// conversion can never overflow time.Duration (the overflow behavior of
// out-of-range float→int conversion is platform-dependent).
const maxTraceSeconds = float64(1<<62) / 1e9

// parseBlktraceLine parses one line of the simplified blktrace format.
// skip is true for blank lines and '#' comments.
func parseBlktraceLine(lineNo int, line string) (req Request, skip bool, err error) {
	if line == "" || line[0] == '#' {
		return Request{}, true, nil
	}
	fields := strings.Fields(line)
	if len(fields) != 4 && len(fields) != 5 {
		return Request{}, false, fmt.Errorf("trace: line %d: want 4 or 5 fields, got %d", lineNo, len(fields))
	}
	ts, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return Request{}, false, fmt.Errorf("trace: line %d: bad timestamp %q: %w", lineNo, fields[0], err)
	}
	if math.IsNaN(ts) || ts > maxTraceSeconds || ts < -maxTraceSeconds {
		return Request{}, false, fmt.Errorf("trace: line %d: timestamp %q out of range", lineNo, fields[0])
	}
	lba, err := strconv.ParseUint(fields[1], 10, 64)
	if err != nil {
		return Request{}, false, fmt.Errorf("trace: line %d: bad lba %q: %w", lineNo, fields[1], err)
	}
	sectors, err := strconv.ParseUint(fields[2], 10, 32)
	if err != nil {
		return Request{}, false, fmt.Errorf("trace: line %d: bad length %q: %w", lineNo, fields[2], err)
	}
	var op Op
	switch strings.ToUpper(fields[3]) {
	case "R", "READ":
		op = Read
	case "W", "WRITE":
		op = Write
	case "D", "T", "DISCARD", "TRIM":
		op = Trim
	default:
		return Request{}, false, fmt.Errorf("trace: line %d: bad op %q", lineNo, fields[3])
	}
	var stream uint64
	if len(fields) == 5 {
		stream, err = strconv.ParseUint(fields[4], 10, 32)
		if err != nil {
			return Request{}, false, fmt.Errorf("trace: line %d: bad stream %q: %w", lineNo, fields[4], err)
		}
	}
	return Request{
		Arrival: time.Duration(ts * float64(time.Second)),
		LBA:     lba,
		Sectors: uint32(sectors),
		Op:      op,
		Stream:  uint32(stream),
	}, false, nil
}

// blktraceSource streams the simplified blktrace text format from a
// seekable reader, validating that arrivals are sorted instead of
// buffering and sorting the whole trace. Out-of-order timestamps are an
// explicit error on this path (use ParseBlktrace to accept and sort
// unsorted input).
type blktraceSource struct {
	r      io.ReadSeeker
	name   string
	sc     *bufio.Scanner
	lineNo int
	last   time.Duration
	seen   bool
	err    error
}

// NewBlktraceSource returns a rewindable streaming reader over the
// simplified blktrace text format. Reset re-seeks the reader to the
// start, so multi-sweep consumers (warm-up + measured simulation passes)
// never materialize the trace.
func NewBlktraceSource(r io.ReadSeeker, name string) Source {
	s := &blktraceSource{r: r, name: name}
	s.Reset()
	return s
}

func (s *blktraceSource) Name() string { return s.name }
func (s *blktraceSource) Err() error   { return s.err }

func (s *blktraceSource) Reset() {
	if _, err := s.r.Seek(0, io.SeekStart); err != nil {
		s.err = fmt.Errorf("trace: rewind: %w", err)
		s.sc = nil
		return
	}
	sc := bufio.NewScanner(s.r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	s.sc, s.lineNo, s.last, s.seen, s.err = sc, 0, 0, false, nil
}

func (s *blktraceSource) Next() (Request, bool) {
	if s.err != nil || s.sc == nil {
		return Request{}, false
	}
	for s.sc.Scan() {
		s.lineNo++
		req, skip, err := parseBlktraceLine(s.lineNo, strings.TrimSpace(s.sc.Text()))
		if err != nil {
			s.err = err
			return Request{}, false
		}
		if skip {
			continue
		}
		if s.seen && req.Arrival < s.last {
			s.err = fmt.Errorf("trace: line %d: out-of-order arrival %v < %v (streaming reader requires sorted input; use ParseBlktrace to sort)",
				s.lineNo, req.Arrival, s.last)
			return Request{}, false
		}
		s.last, s.seen = req.Arrival, true
		return req, true
	}
	if err := s.sc.Err(); err != nil {
		s.err = fmt.Errorf("trace: scan: %w", err)
	}
	return Request{}, false
}

// WriteBlktraceSource rewinds the source and streams it out in the
// format ParseBlktrace and NewBlktraceSource accept, without ever
// materializing the trace.
func WriteBlktraceSource(w io.Writer, src Source) error {
	src.Reset()
	bw := bufio.NewWriter(w)
	if name := src.Name(); name != "" {
		if _, err := fmt.Fprintf(bw, "# workload: %s\n", name); err != nil {
			return err
		}
	}
	for {
		r, ok := src.Next()
		if !ok {
			break
		}
		if err := writeBlktraceLine(bw, r); err != nil {
			return err
		}
	}
	if err := src.Err(); err != nil {
		return err
	}
	return bw.Flush()
}
