package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"time"
)

// randTrace builds an arrival-sorted trace with varied sizes, ops and
// addresses for exercising the stream adapters.
func randTrace(n int, seed int64) *Trace {
	rng := rand.New(rand.NewSource(seed))
	tr := &Trace{Name: "rand"}
	var arrival time.Duration
	for i := 0; i < n; i++ {
		arrival += time.Duration(rng.Intn(2000)) * time.Microsecond
		tr.Requests = append(tr.Requests, Request{
			Arrival: arrival,
			LBA:     uint64(1000 + rng.Int63n(1<<30)),
			Sectors: uint32(1 + rng.Intn(512)),
			Op:      Op(rng.Intn(2)),
		})
	}
	return tr
}

// drain pulls every request off src (without resetting first).
func drain(t *testing.T, src Source) []Request {
	t.Helper()
	var out []Request
	for {
		r, ok := src.Next()
		if !ok {
			break
		}
		out = append(out, r)
	}
	if err := src.Err(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	return out
}

func TestTraceSourceMatchesRequests(t *testing.T) {
	tr := randTrace(500, 1)
	src := tr.Source()
	if src.Name() != tr.Name {
		t.Fatalf("Name = %q, want %q", src.Name(), tr.Name)
	}
	got := drain(t, src)
	if !reflect.DeepEqual(got, tr.Requests) {
		t.Fatal("Source sweep differs from trace requests")
	}
	// Exhausted cursor stays exhausted until Reset.
	if _, ok := src.Next(); ok {
		t.Fatal("exhausted source yielded a request")
	}
	src.Reset()
	if again := drain(t, src); !reflect.DeepEqual(again, tr.Requests) {
		t.Fatal("post-Reset sweep differs")
	}
}

func TestMaterializeRoundTrip(t *testing.T) {
	tr := randTrace(300, 2)
	src := tr.Source()
	// Advance the cursor first: Materialize must Reset before draining.
	src.Next()
	src.Next()
	got, err := Materialize(src)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != tr.Name || !reflect.DeepEqual(got.Requests, tr.Requests) {
		t.Fatal("Materialize(Source) != original trace")
	}
}

func TestFactoryYieldsIndependentCursors(t *testing.T) {
	tr := randTrace(100, 3)
	f := tr.Factory()
	a, b := f(), f()
	a.Next()
	a.Next()
	a.Next()
	// b's position must be unaffected by a's progress.
	r, ok := b.Next()
	if !ok || r != tr.Requests[0] {
		t.Fatal("factory cursors share state")
	}
}

func TestSliceStreamMatchesSlice(t *testing.T) {
	tr := randTrace(200, 4)
	for _, bounds := range [][2]int{{0, 200}, {0, 50}, {50, 150}, {199, 200}, {120, 120}} {
		lo, hi := bounds[0], bounds[1]
		want := tr.Slice(lo, hi)
		got, err := Materialize(SliceStream(tr.Source(), lo, hi))
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Requests) != len(want.Requests) {
			t.Fatalf("[%d:%d): %d requests, want %d", lo, hi, len(got.Requests), len(want.Requests))
		}
		for i := range want.Requests {
			if got.Requests[i] != want.Requests[i] {
				t.Fatalf("[%d:%d): request %d differs", lo, hi, i)
			}
		}
	}
}

func TestCompressStreamMatchesCompress(t *testing.T) {
	tr := randTrace(200, 5)
	for _, factor := range []float64{20, 2.5, 1, 0, -3} {
		want := tr.Compress(factor)
		got, err := Materialize(CompressStream(tr.Source(), factor))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Requests, want.Requests) {
			t.Fatalf("factor %g: stream compress differs from materialized", factor)
		}
	}
}

func TestNormalizeStreamMatchesNormalize(t *testing.T) {
	tr := randTrace(200, 6)
	want, err := Materialize(tr.Source())
	if err != nil {
		t.Fatal(err)
	}
	want.Normalize()
	got, err := Materialize(NormalizeStream(tr.Source()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Requests, want.Requests) {
		t.Fatal("stream normalize differs from materialized")
	}
	// And a second Reset-separated sweep must agree (cached minimum).
	src := NormalizeStream(tr.Source())
	first := drain(t, src)
	src.Reset()
	second := drain(t, src)
	if !reflect.DeepEqual(first, second) {
		t.Fatal("NormalizeStream sweeps differ across Reset")
	}
}

func TestMergeSourcesOrdersByArrival(t *testing.T) {
	a := &Trace{Name: "a", Requests: []Request{
		{Arrival: 1 * time.Millisecond, LBA: 1, Sectors: 8},
		{Arrival: 3 * time.Millisecond, LBA: 3, Sectors: 8},
	}}
	b := &Trace{Name: "b", Requests: []Request{
		{Arrival: 1 * time.Millisecond, LBA: 10, Sectors: 8},
		{Arrival: 2 * time.Millisecond, LBA: 20, Sectors: 8},
	}}
	m := MergeSources("ab", a.Source(), b.Source())
	if m.Name() != "ab" {
		t.Fatalf("Name = %q", m.Name())
	}
	got := drain(t, m)
	wantLBAs := []uint64{1, 10, 20, 3} // tie at 1ms goes to source a
	if len(got) != len(wantLBAs) {
		t.Fatalf("merged %d requests, want %d", len(got), len(wantLBAs))
	}
	for i, w := range wantLBAs {
		if got[i].LBA != w {
			t.Fatalf("merged[%d].LBA = %d, want %d", i, got[i].LBA, w)
		}
	}
	var prev time.Duration
	for i, r := range got {
		if r.Arrival < prev {
			t.Fatalf("merged stream unsorted at %d", i)
		}
		prev = r.Arrival
	}
	m.Reset()
	if again := drain(t, m); !reflect.DeepEqual(again, got) {
		t.Fatal("merge sweeps differ across Reset")
	}
}

func TestMergeSourcesPartitionedDisjoint(t *testing.T) {
	// Three tenants deliberately addressing the SAME LBA range: under
	// MergeSourcesTagged they alias; partitioned they must not.
	mk := func(name string, base time.Duration) *Trace {
		return &Trace{Name: name, Requests: []Request{
			{Arrival: base, LBA: 0, Sectors: 8, Op: Write},
			{Arrival: base + 10*time.Millisecond, LBA: 100, Sectors: 16, Op: Write},
			{Arrival: base + 20*time.Millisecond, LBA: 50, Sectors: 8, Op: Read},
		}}
	}
	a, b, c := mk("a", 0), mk("b", time.Millisecond), mk("c", 2*time.Millisecond)
	m := MergeSourcesPartitioned("abc", a.Source(), b.Source(), c.Source())
	got := drain(t, m)
	if len(got) != 9 {
		t.Fatalf("merged %d requests, want 9", len(got))
	}
	// Collect each tenant's occupied address interval and check pairwise
	// disjointness.
	lo := map[uint32]uint64{}
	hi := map[uint32]uint64{}
	for _, r := range got {
		if r.Stream == 0 {
			t.Fatal("partitioned merge emitted an untagged request")
		}
		end := r.LBA + uint64(r.Sectors)
		if cur, ok := lo[r.Stream]; !ok || r.LBA < cur {
			lo[r.Stream] = r.LBA
		}
		if end > hi[r.Stream] {
			hi[r.Stream] = end
		}
	}
	if len(lo) != 3 {
		t.Fatalf("saw %d tenants, want 3", len(lo))
	}
	for s1 := uint32(1); s1 <= 3; s1++ {
		for s2 := s1 + 1; s2 <= 3; s2++ {
			if lo[s1] < hi[s2] && lo[s2] < hi[s1] {
				t.Fatalf("tenants %d and %d overlap: [%d,%d) vs [%d,%d)",
					s1, s2, lo[s1], hi[s1], lo[s2], hi[s2])
			}
		}
	}
	// Offsets must be the cumulative spans (span = max LBA+Sectors = 116).
	for _, r := range got {
		wantOff := uint64(r.Stream-1) * 116
		origLBA := r.LBA - wantOff
		if origLBA != 0 && origLBA != 100 && origLBA != 50 {
			t.Fatalf("stream %d request at LBA %d not a 116-aligned rebase", r.Stream, r.LBA)
		}
	}
	// Arrival order preserved and sweeps deterministic across Reset.
	var prev time.Duration
	for i, r := range got {
		if r.Arrival < prev {
			t.Fatalf("partitioned stream unsorted at %d", i)
		}
		prev = r.Arrival
	}
	m.Reset()
	if again := drain(t, m); !reflect.DeepEqual(again, got) {
		t.Fatal("partitioned sweeps differ across Reset")
	}
}

func TestScanWindowsMatchesWindows(t *testing.T) {
	for _, n := range []int{100, 3000, 7000, 8000, 9001} {
		for _, size := range []int{0, 3000, 1024} {
			tr := randTrace(n, int64(n)*31+int64(size))
			want := Windows(tr, size)
			var got []*Trace
			err := ScanWindows(tr.Source(), size, func(w *Trace) error {
				cp := &Trace{Name: w.Name, Requests: append([]Request(nil), w.Requests...)}
				got = append(got, cp)
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("n=%d size=%d: %d windows, want %d", n, size, len(got), len(want))
			}
			for i := range want {
				if !reflect.DeepEqual(got[i].Requests, want[i].Requests) {
					t.Fatalf("n=%d size=%d: window %d differs", n, size, i)
				}
			}
		}
	}
}

func TestFeatureMatrixSourceMatchesFeatureMatrix(t *testing.T) {
	tr := randTrace(7500, 9)
	want := FeatureMatrix(Windows(tr, DefaultWindowSize))
	got, err := FeatureMatrixSource(tr.Source(), DefaultWindowSize)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("streamed feature matrix differs from materialized")
	}
}

func TestComputeStatsSourceMatchesComputeStats(t *testing.T) {
	for _, n := range []int{0, 1, 2, 500} {
		tr := randTrace(n, int64(10+n))
		want := ComputeStats(tr)
		got, err := ComputeStatsSource(tr.Source())
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("n=%d: streamed stats %+v != materialized %+v", n, got, want)
		}
	}
}

func TestBlktraceSourceMatchesParse(t *testing.T) {
	tr := randTrace(400, 11)
	var buf bytes.Buffer
	if err := WriteBlktrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	want, err := ParseBlktrace(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	src := NewBlktraceSource(bytes.NewReader(data), "rand")
	got, err := Materialize(src)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Requests, want.Requests) {
		t.Fatal("streaming reader differs from buffered parser on sorted input")
	}
	// Two Reset-separated sweeps must be identical (the simulator's
	// warm-up + measured passes rely on this).
	src.Reset()
	first := drain(t, src)
	src.Reset()
	second := drain(t, src)
	if !reflect.DeepEqual(first, second) {
		t.Fatal("blktrace source sweeps differ across Reset")
	}
}

func TestBlktraceSourceOutOfOrder(t *testing.T) {
	src := NewBlktraceSource(strings.NewReader("2.0 5 4 R\n1.0 9 2 W\n"), "ooo")
	if r, ok := src.Next(); !ok || r.LBA != 5 {
		t.Fatalf("first request = %+v, %v", r, ok)
	}
	if _, ok := src.Next(); ok {
		t.Fatal("out-of-order arrival should end the stream")
	}
	err := src.Err()
	if err == nil || !strings.Contains(err.Error(), "out-of-order") {
		t.Fatalf("Err() = %v, want out-of-order error", err)
	}
	// Reset clears the error and replays up to the same failure point.
	src.Reset()
	if src.Err() != nil {
		t.Fatal("Reset should clear the error")
	}
	if r, ok := src.Next(); !ok || r.LBA != 5 {
		t.Fatalf("post-Reset first request = %+v, %v", r, ok)
	}
}

func TestBlktraceSourceSkipsCommentsAndBlanks(t *testing.T) {
	in := "# workload: x\r\n\r\n0.5 100 8 W\n\n# tail comment\n1.5 200 8 R\r\n"
	got := drain(t, NewBlktraceSource(strings.NewReader(in), "x"))
	if len(got) != 2 || got[0].LBA != 100 || got[1].LBA != 200 {
		t.Fatalf("parsed %+v", got)
	}
	if got[1].Op != Read || got[0].Op != Write {
		t.Fatal("ops wrong")
	}
}

func TestBlktraceSourceNegativeFirstTimestamp(t *testing.T) {
	// A sorted stream starting below zero must not trip the order check.
	got := drain(t, NewBlktraceSource(strings.NewReader("-1.0 1 8 R\n0.0 2 8 R\n"), "neg"))
	if len(got) != 2 {
		t.Fatalf("parsed %d requests, want 2", len(got))
	}
}

func TestWriteBlktraceSourceMatchesWriteBlktrace(t *testing.T) {
	tr := randTrace(250, 12)
	var want, got bytes.Buffer
	if err := WriteBlktrace(&want, tr); err != nil {
		t.Fatal(err)
	}
	if err := WriteBlktraceSource(&got, tr.Source()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatal("WriteBlktraceSource output differs from WriteBlktrace")
	}
}

// TestBlktraceDiscardAndStreamRecords pins the host-interface trace
// extensions: every discard spelling parses to Trim, the optional fifth
// field carries the multi-stream tag, and the streaming reader agrees
// with the buffered parser on such input. The written form (`D`, tag
// only when nonzero) must be a round-trip fixed point.
func TestBlktraceDiscardAndStreamRecords(t *testing.T) {
	in := "0.000000 100 8 D\n" +
		"0.000001 200 16 T\n" +
		"0.000002 300 8 discard\n" +
		"0.000003 400 8 TRIM\n" +
		"0.000004 500 8 W 3\n" +
		"0.000005 600 8 R 2\n" +
		"0.000006 700 64 D 1\n"
	want, err := ParseBlktrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if want.Requests[i].Op != Trim {
			t.Fatalf("request %d: op = %v, want Trim", i, want.Requests[i].Op)
		}
	}
	for i, tag := range map[int]uint32{4: 3, 5: 2, 6: 1, 0: 0} {
		if want.Requests[i].Stream != tag {
			t.Fatalf("request %d: stream = %d, want %d", i, want.Requests[i].Stream, tag)
		}
	}
	got, err := Materialize(NewBlktraceSource(strings.NewReader(in), want.Name))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Requests, want.Requests) {
		t.Fatal("streaming reader differs from buffered parser on discard/stream input")
	}

	var first, second bytes.Buffer
	if err := WriteBlktrace(&first, want); err != nil {
		t.Fatal(err)
	}
	rt, err := ParseBlktrace(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteBlktrace(&second, rt); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatal("discard/stream records are not a write->parse->write fixed point")
	}
}
