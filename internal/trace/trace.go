// Package trace models block-level I/O traces: the request format, a
// blktrace-style text parser/writer, the window partitioning and
// normalization of AutoBlox's workload characterization (§3.1), and the
// per-window feature extraction that feeds PCA + k-means.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Op is the I/O operation type.
type Op uint8

const (
	// Read is a block read request.
	Read Op = iota
	// Write is a block write request.
	Write
	// Trim is a discard: the host declares the addressed sectors dead.
	// No data moves; the device may invalidate its mapping and reclaim
	// the backing flash. Blktrace spells these as `D` records.
	Trim
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case Read:
		return "R"
	case Trim:
		return "D"
	default:
		return "W"
	}
}

// Request is one block I/O request.
type Request struct {
	// Arrival is the request submission time relative to trace start.
	Arrival time.Duration
	// LBA is the starting logical block address, in 512-byte sectors.
	LBA uint64
	// Sectors is the request length in 512-byte sectors.
	Sectors uint32
	// Op is Read, Write, or Trim.
	Op Op
	// Stream is the multi-stream directive tag (0 = untagged). Devices
	// with a multi-stream host interface route writes with different
	// stream tags to disjoint flash blocks; all other interfaces ignore
	// it. MergeSourcesTagged stamps per-tenant tags on merged traces.
	Stream uint32
}

// Bytes returns the request size in bytes.
func (r Request) Bytes() uint64 { return uint64(r.Sectors) * 512 }

// Trace is an ordered sequence of requests with a name used for
// clustering bookkeeping.
type Trace struct {
	Name     string
	Requests []Request
}

// Duration returns the arrival time of the last request.
func (t *Trace) Duration() time.Duration {
	if len(t.Requests) == 0 {
		return 0
	}
	return t.Requests[len(t.Requests)-1].Arrival
}

// ReadFraction returns the fraction of requests that are reads.
func (t *Trace) ReadFraction() float64 {
	if len(t.Requests) == 0 {
		return 0
	}
	var reads int
	for _, r := range t.Requests {
		if r.Op == Read {
			reads++
		}
	}
	return float64(reads) / float64(len(t.Requests))
}

// TotalBytes returns the sum of request sizes.
func (t *Trace) TotalBytes() uint64 {
	var b uint64
	for _, r := range t.Requests {
		b += r.Bytes()
	}
	return b
}

// Slice returns a sub-trace of requests [lo, hi).
func (t *Trace) Slice(lo, hi int) *Trace {
	return &Trace{Name: t.Name, Requests: t.Requests[lo:hi]}
}

// Compress returns a copy of the trace with all arrival times divided by
// factor. Compressing arrivals turns a timestamped replay into a
// device-capability stress test: once the offered rate far exceeds the
// device, measured throughput reflects what the hardware can sustain
// rather than what the host offered (used by what-if throughput goals).
func (t *Trace) Compress(factor float64) *Trace {
	if factor <= 0 {
		factor = 1
	}
	out := &Trace{Name: t.Name, Requests: make([]Request, len(t.Requests))}
	for i, r := range t.Requests {
		r.Arrival = time.Duration(float64(r.Arrival) / factor)
		out.Requests[i] = r
	}
	return out
}

// Split partitions the trace into a training prefix holding frac of the
// requests and a validation suffix with the remainder — the 70/30 split
// the paper uses for clustering validation.
func (t *Trace) Split(frac float64) (train, valid *Trace) {
	cut := int(float64(len(t.Requests)) * frac)
	if cut < 0 {
		cut = 0
	}
	if cut > len(t.Requests) {
		cut = len(t.Requests)
	}
	return t.Slice(0, cut), t.Slice(cut, len(t.Requests))
}

// Normalize rewrites absolute block addresses into relative offsets in a
// uniform address space, as §3.1 requires: the absolute value of a block
// address depends on the allocator, so only offsets from the smallest
// address seen carry workload signal. I/O size and type are unmodified.
// The receiver is modified in place and returned for chaining.
func (t *Trace) Normalize() *Trace {
	if len(t.Requests) == 0 {
		return t
	}
	min := t.Requests[0].LBA
	for _, r := range t.Requests {
		if r.LBA < min {
			min = r.LBA
		}
	}
	for i := range t.Requests {
		t.Requests[i].LBA -= min
	}
	return t
}

// ParseBlktrace reads a simplified blktrace-style text format, one
// request per line:
//
//	<timestamp-seconds> <lba-sectors> <sectors> <R|W|D> [stream]
//
// The optional fifth field is a multi-stream tag (omitted when zero).
// Lines starting with '#' and blank lines are ignored. Requests are
// buffered and sorted by arrival, so unsorted input is accepted; for a
// constant-memory reader over already-sorted files use NewBlktraceSource.
func ParseBlktrace(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	tr := &Trace{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		req, skip, err := parseBlktraceLine(lineNo, strings.TrimSpace(sc.Text()))
		if err != nil {
			return nil, err
		}
		if skip {
			continue
		}
		tr.Requests = append(tr.Requests, req)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: scan: %w", err)
	}
	sort.SliceStable(tr.Requests, func(i, j int) bool {
		return tr.Requests[i].Arrival < tr.Requests[j].Arrival
	})
	return tr, nil
}

// WriteBlktrace emits the trace in the format ParseBlktrace accepts.
func WriteBlktrace(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	if t.Name != "" {
		if _, err := fmt.Fprintf(bw, "# workload: %s\n", t.Name); err != nil {
			return err
		}
	}
	for _, r := range t.Requests {
		if err := writeBlktraceLine(bw, r); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// writeBlktraceLine emits one request in the format parseBlktraceLine
// accepts. The stream tag is appended only when nonzero, so untagged
// traces round-trip byte-identically with the pre-multi-stream format.
func writeBlktraceLine(w io.Writer, r Request) error {
	if r.Stream != 0 {
		_, err := fmt.Fprintf(w, "%.6f %d %d %s %d\n",
			r.Arrival.Seconds(), r.LBA, r.Sectors, r.Op, r.Stream)
		return err
	}
	_, err := fmt.Fprintf(w, "%.6f %d %d %s\n",
		r.Arrival.Seconds(), r.LBA, r.Sectors, r.Op)
	return err
}
