package trace

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func mkTrace(n int, op Op) *Trace {
	t := &Trace{Name: "test"}
	for i := 0; i < n; i++ {
		t.Requests = append(t.Requests, Request{
			Arrival: time.Duration(i) * time.Millisecond,
			LBA:     uint64(1000 + i*8),
			Sectors: 8,
			Op:      op,
		})
	}
	return t
}

func TestRequestBytes(t *testing.T) {
	r := Request{Sectors: 8}
	if r.Bytes() != 4096 {
		t.Fatalf("Bytes = %d, want 4096", r.Bytes())
	}
}

func TestTraceAccessors(t *testing.T) {
	tr := mkTrace(10, Read)
	if tr.Duration() != 9*time.Millisecond {
		t.Fatalf("Duration = %v", tr.Duration())
	}
	if tr.ReadFraction() != 1 {
		t.Fatalf("ReadFraction = %v", tr.ReadFraction())
	}
	if tr.TotalBytes() != 10*4096 {
		t.Fatalf("TotalBytes = %d", tr.TotalBytes())
	}
	empty := &Trace{}
	if empty.Duration() != 0 || empty.ReadFraction() != 0 {
		t.Fatal("empty trace accessors")
	}
}

func TestSplit(t *testing.T) {
	tr := mkTrace(10, Write)
	train, valid := tr.Split(0.7)
	if len(train.Requests) != 7 || len(valid.Requests) != 3 {
		t.Fatalf("split = %d/%d", len(train.Requests), len(valid.Requests))
	}
	train, valid = tr.Split(2.0)
	if len(train.Requests) != 10 || len(valid.Requests) != 0 {
		t.Fatal("overflow split should clamp")
	}
}

func TestNormalize(t *testing.T) {
	tr := &Trace{Requests: []Request{
		{LBA: 5000, Sectors: 8},
		{LBA: 5100, Sectors: 8},
	}}
	tr.Normalize()
	if tr.Requests[0].LBA != 0 || tr.Requests[1].LBA != 100 {
		t.Fatalf("Normalize = %+v", tr.Requests)
	}
}

func TestParseWriteRoundTrip(t *testing.T) {
	orig := mkTrace(50, Read)
	orig.Requests[3].Op = Write
	var buf bytes.Buffer
	if err := WriteBlktrace(&buf, orig); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseBlktrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed.Requests) != len(orig.Requests) {
		t.Fatalf("parsed %d requests, want %d", len(parsed.Requests), len(orig.Requests))
	}
	for i := range orig.Requests {
		a, b := orig.Requests[i], parsed.Requests[i]
		if a.LBA != b.LBA || a.Sectors != b.Sectors || a.Op != b.Op {
			t.Fatalf("request %d mismatch: %+v vs %+v", i, a, b)
		}
		if d := a.Arrival - b.Arrival; d > time.Microsecond || d < -time.Microsecond {
			t.Fatalf("request %d arrival drift %v", i, d)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"1.0 100 8",   // too few fields
		"x 100 8 R",   // bad ts
		"1.0 x 8 R",   // bad lba
		"1.0 100 x R", // bad sectors
		"1.0 100 8 Q", // bad op
	}
	for _, c := range cases {
		if _, err := ParseBlktrace(strings.NewReader(c)); err == nil {
			t.Fatalf("expected parse error for %q", c)
		}
	}
	// Comments and blank lines are fine.
	tr, err := ParseBlktrace(strings.NewReader("# hi\n\n0.5 100 8 W\n"))
	if err != nil || len(tr.Requests) != 1 {
		t.Fatalf("comment handling failed: %v %v", tr, err)
	}
}

func TestParseSortsByArrival(t *testing.T) {
	in := "2.0 200 8 R\n1.0 100 8 R\n"
	tr, err := ParseBlktrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Requests[0].LBA != 100 {
		t.Fatal("requests not sorted by arrival")
	}
}

func TestWindows(t *testing.T) {
	tr := mkTrace(7000, Read)
	ws := Windows(tr, 3000)
	// 3000 + 3000 + 1000(<1500 dropped) => but 1000 < 1500 so dropped.
	if len(ws) != 2 {
		t.Fatalf("got %d windows, want 2", len(ws))
	}
	tr2 := mkTrace(8000, Read)
	ws2 := Windows(tr2, 3000)
	// trailing window of 2000 >= 1500 kept.
	if len(ws2) != 3 {
		t.Fatalf("got %d windows, want 3", len(ws2))
	}
	if len(Windows(mkTrace(100, Read), 3000)) != 1 {
		t.Fatal("short trace should yield one window")
	}
	if len(Windows(mkTrace(100, Read), 0)) != 1 {
		t.Fatal("zero size should use default")
	}
}

func TestWindowFeaturesSequentialVsRandom(t *testing.T) {
	seqTrace := mkTrace(1000, Read) // perfectly sequential
	rng := rand.New(rand.NewSource(1))
	rnd := &Trace{}
	for i := 0; i < 1000; i++ {
		rnd.Requests = append(rnd.Requests, Request{
			Arrival: time.Duration(i) * time.Millisecond,
			LBA:     uint64(rng.Intn(1 << 24)),
			Sectors: 8,
			Op:      Read,
		})
	}
	fs := WindowFeatures(seqTrace)
	fr := WindowFeatures(rnd)
	if fs[5] < 0.95 {
		t.Fatalf("sequential fraction of sequential trace = %g", fs[5])
	}
	if fr[5] > 0.05 {
		t.Fatalf("sequential fraction of random trace = %g", fr[5])
	}
	if fr[7] <= fs[7] {
		t.Fatal("random trace should have larger mean jump")
	}
	// A hot-spot workload (most accesses in a narrow region of a wide
	// space) must have lower spatial entropy than the uniform random one.
	hot := &Trace{}
	for i := 0; i < 1000; i++ {
		lba := uint64(rng.Intn(1 << 12))
		if i%100 == 0 {
			lba = uint64(rng.Intn(1 << 24)) // occasional far access widens span
		}
		hot.Requests = append(hot.Requests, Request{
			Arrival: time.Duration(i) * time.Millisecond, LBA: lba, Sectors: 8, Op: Read,
		})
	}
	if fh := WindowFeatures(hot); fh[11] >= fr[11] {
		t.Fatalf("hotspot trace entropy %g should be below random %g", fh[11], fr[11])
	}
}

func TestWindowFeaturesIntensity(t *testing.T) {
	slow := &Trace{}
	fast := &Trace{}
	for i := 0; i < 500; i++ {
		slow.Requests = append(slow.Requests, Request{Arrival: time.Duration(i) * 10 * time.Millisecond, LBA: uint64(i * 8), Sectors: 8})
		fast.Requests = append(fast.Requests, Request{Arrival: time.Duration(i) * 10 * time.Microsecond, LBA: uint64(i * 8), Sectors: 8})
	}
	if WindowFeatures(fast)[12] <= WindowFeatures(slow)[12] {
		t.Fatal("IOPS feature should increase with intensity")
	}
	if WindowFeatures(fast)[3] >= WindowFeatures(slow)[3] {
		t.Fatal("inter-arrival feature should decrease with intensity")
	}
}

func TestWindowFeaturesEmpty(t *testing.T) {
	f := WindowFeatures(&Trace{})
	if len(f) != NumWindowFeatures {
		t.Fatalf("feature count = %d, want %d", len(f), NumWindowFeatures)
	}
	for i, v := range f {
		if v != 0 {
			t.Fatalf("feature %d of empty window = %g, want 0", i, v)
		}
	}
}

// Property: features are finite for arbitrary traces.
func TestWindowFeaturesFiniteProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := &Trace{}
		n := 1 + rng.Intn(200)
		var arrival time.Duration
		for i := 0; i < n; i++ {
			arrival += time.Duration(rng.Intn(1000)) * time.Microsecond
			tr.Requests = append(tr.Requests, Request{
				Arrival: arrival,
				LBA:     uint64(rng.Int63n(1 << 30)),
				Sectors: uint32(1 + rng.Intn(2048)),
				Op:      Op(rng.Intn(2)),
			})
		}
		for _, v := range WindowFeatures(tr) {
			if v != v || v > 1e18 || v < -1e18 { // NaN or absurd
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestFeatureMatrix(t *testing.T) {
	tr := mkTrace(6000, Read)
	ws := Windows(tr, 3000)
	fm := FeatureMatrix(ws)
	if len(fm) != len(ws) {
		t.Fatalf("matrix rows %d, want %d", len(fm), len(ws))
	}
	for _, row := range fm {
		if len(row) != NumWindowFeatures {
			t.Fatalf("row width %d", len(row))
		}
	}
}

func TestCompress(t *testing.T) {
	tr := mkTrace(100, Read)
	c := tr.Compress(10)
	if len(c.Requests) != 100 {
		t.Fatalf("compress changed request count")
	}
	for i := range c.Requests {
		if c.Requests[i].Arrival != tr.Requests[i].Arrival/10 {
			t.Fatalf("arrival %d not divided: %v vs %v", i, c.Requests[i].Arrival, tr.Requests[i].Arrival)
		}
		if c.Requests[i].LBA != tr.Requests[i].LBA {
			t.Fatal("compress changed addresses")
		}
	}
	// Original untouched.
	if tr.Requests[99].Arrival != 99*time.Millisecond {
		t.Fatal("Compress mutated the source trace")
	}
	// Non-positive factor is identity.
	id := tr.Compress(0)
	if id.Requests[99].Arrival != tr.Requests[99].Arrival {
		t.Fatal("factor 0 should be identity")
	}
}
