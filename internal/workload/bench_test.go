package workload

import "testing"

// BenchmarkGenerate measures synthetic-trace generation throughput.
func BenchmarkGenerate(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(Database, Options{Requests: 10000, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
