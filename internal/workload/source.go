package workload

import (
	"fmt"
	"math/rand"
	"time"

	"autoblox/internal/trace"
)

// genSource is a lazy, rewindable generator cursor: requests are derived
// one at a time from the seeded PRNG state, so a trace of any length
// occupies O(streams) memory and Reset re-derives the stream from the
// seed instead of storing it. The draw order in Next is exactly the loop
// body of the original materializing generator, which is what guarantees
// Generate(c, opt) ≡ Materialize(NewSource(c, opt)) bit for bit.
type genSource struct {
	c   Category
	p   profile
	opt Options

	rng            *rand.Rand
	cursors        []uint64
	now            float64 // microseconds
	burstRemaining int
	phaseIdx       int
	emitted        int
}

// NewSource returns a streaming generator for the category. The source
// is deterministic in (c, opt.Seed): every Reset-separated sweep yields
// the identical request sequence.
func NewSource(c Category, opt Options) (trace.Source, error) {
	p, ok := profiles[c]
	if !ok {
		return nil, fmt.Errorf("workload: unknown category %q", c)
	}
	opt.defaults()
	g := &genSource{c: c, p: p, opt: opt}
	g.Reset()
	return g, nil
}

// MustSource is NewSource for known-good categories; it panics on error
// and is intended for examples, tests and benchmarks.
func MustSource(c Category, opt Options) trace.Source {
	src, err := NewSource(c, opt)
	if err != nil {
		panic(err)
	}
	return src
}

// Factory returns a SourceFactory of independent generator cursors, so
// parallel simulation workers each re-derive the stream from the seed
// rather than sharing cursor state or a materialized copy.
func Factory(c Category, opt Options) (trace.SourceFactory, error) {
	if _, ok := profiles[c]; !ok {
		return nil, fmt.Errorf("workload: unknown category %q", c)
	}
	return func() trace.Source { return MustSource(c, opt) }, nil
}

func (g *genSource) Name() string { return string(g.c) }
func (g *genSource) Err() error   { return nil }

// Reset re-seeds the PRNG and replays the stream-cursor initialization,
// restoring the source to the exact state a fresh NewSource has.
func (g *genSource) Reset() {
	g.rng = rand.New(rand.NewSource(g.opt.Seed ^ int64(hashCategory(g.c))))
	// Stream state: each stream is an independent sequential cursor.
	g.cursors = make([]uint64, g.p.streams)
	for i := range g.cursors {
		g.cursors[i] = uint64(g.rng.Int63n(int64(g.p.spanSectors)))
	}
	g.now = 0
	g.burstRemaining = 0
	g.phaseIdx = 0
	g.emitted = 0
}

func (g *genSource) Next() (trace.Request, bool) {
	if g.emitted >= g.opt.Requests {
		return trace.Request{}, false
	}
	g.emitted++
	p := g.p
	ph := p.phases[g.phaseIdx]

	// Arrival process: bursts of back-to-back requests separated by
	// exponential gaps. Each burst draws its execution phase, so a
	// characterization window sees the category's phase *mixture*
	// (long production traces blend phases the same way), keeping
	// window-level clustering stable across a trace.
	if g.burstRemaining > 0 {
		g.now += g.rng.Float64() * 3 // intra-burst jitter, µs
		g.burstRemaining--
	} else {
		g.phaseIdx = g.rng.Intn(len(p.phases))
		ph = p.phases[g.phaseIdx]
		g.now += g.rng.ExpFloat64() * ph.meanGapUS * float64(ph.burstLen)
		g.burstRemaining = ph.burstLen - 1
	}

	isRead := g.rng.Float64() < ph.readRatio
	sectors := pickSize(g.rng, ph.sizes)

	var lba uint64
	stream := g.rng.Intn(p.streams)
	sequential := g.rng.Float64() < ph.seqProb
	switch {
	case sequential:
		lba = g.cursors[stream]
	case !isRead && ph.writeSeq:
		// Append-style writes go to the stream head too.
		lba = g.cursors[stream]
	case g.rng.Float64() < ph.hotFrac:
		hotSpan := uint64(float64(p.spanSectors) * ph.hotSpanFrac)
		if hotSpan == 0 {
			hotSpan = 1
		}
		lba = uint64(g.rng.Int63n(int64(hotSpan)))
	default:
		lba = uint64(g.rng.Int63n(int64(p.spanSectors)))
	}
	if lba+uint64(sectors) > p.spanSectors {
		lba = p.spanSectors - uint64(sectors)
	}
	if sequential || (!isRead && ph.writeSeq) {
		next := lba + uint64(sectors)
		if next >= p.spanSectors {
			next = uint64(g.rng.Int63n(int64(p.spanSectors / 2)))
		}
		g.cursors[stream] = next
	}

	op := trace.Write
	if isRead {
		op = trace.Read
	} else if g.opt.TrimRatio > 0 && g.rng.Float64() < g.opt.TrimRatio {
		// A trim replaces a write of the same span: hosts discard what
		// they previously wrote. The draw is gated on TrimRatio so the
		// default (no-trim) request stream is bit-identical to before the
		// knob existed.
		op = trace.Trim
	}
	var tag uint32
	if g.opt.Streams > 0 {
		// Reuse the already-drawn stream cursor index, so tagging adds no
		// RNG draws and untagged output stays bit-identical.
		tag = uint32(stream%g.opt.Streams) + 1
	}
	return trace.Request{
		Arrival: time.Duration(g.now * float64(time.Microsecond)),
		LBA:     lba,
		Sectors: sectors,
		Op:      op,
		Stream:  tag,
	}, true
}
