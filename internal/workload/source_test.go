package workload

import (
	"reflect"
	"testing"

	"autoblox/internal/trace"
)

func TestNewSourceUnknown(t *testing.T) {
	if _, err := NewSource(Category("NoSuch"), Options{}); err == nil {
		t.Fatal("expected error for unknown category")
	}
	if _, err := Factory(Category("NoSuch"), Options{}); err == nil {
		t.Fatal("expected factory error for unknown category")
	}
}

// TestSourceMatchesGenerate is the generator half of the streaming
// equivalence guarantee: for every category, draining the lazy source
// must yield the exact request sequence the materializing generator
// produces for the same options.
func TestSourceMatchesGenerate(t *testing.T) {
	for _, c := range All() {
		opt := Options{Requests: 2500, Seed: 42}
		want := MustGenerate(c, opt)
		got, err := trace.Materialize(MustSource(c, opt))
		if err != nil {
			t.Fatalf("%s: %v", c, err)
		}
		if got.Name != want.Name {
			t.Fatalf("%s: name %q != %q", c, got.Name, want.Name)
		}
		if !reflect.DeepEqual(got.Requests, want.Requests) {
			t.Fatalf("%s: streamed requests differ from Generate", c)
		}
	}
}

// TestSourceResetDeterminism pins the Source contract the simulator's
// two-sweep (warm-up + measured) design depends on: Reset-separated
// sweeps are bit-for-bit identical, and a partially drained cursor fully
// recovers on Reset.
func TestSourceResetDeterminism(t *testing.T) {
	src := MustSource(Database, Options{Requests: 1000, Seed: 7})
	sweep := func() []trace.Request {
		var out []trace.Request
		for {
			r, ok := src.Next()
			if !ok {
				break
			}
			out = append(out, r)
		}
		return out
	}
	first := sweep()
	if len(first) != 1000 {
		t.Fatalf("sweep yielded %d requests", len(first))
	}
	src.Reset()
	second := sweep()
	if !reflect.DeepEqual(first, second) {
		t.Fatal("Reset-separated sweeps differ")
	}
	// Partial drain, then Reset: still the same stream.
	src.Reset()
	for i := 0; i < 137; i++ {
		src.Next()
	}
	src.Reset()
	third := sweep()
	if !reflect.DeepEqual(first, third) {
		t.Fatal("Reset after partial drain diverges")
	}
}

func TestFactoryCursorsIndependent(t *testing.T) {
	f, err := Factory(KVStore, Options{Requests: 500, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	a, b := f(), f()
	ra, _ := a.Next()
	// Drain b fully, then pull a's second request: b must not disturb a.
	for {
		if _, ok := b.Next(); !ok {
			break
		}
	}
	ra2, _ := a.Next()
	c := f()
	rc, _ := c.Next()
	c.Next()
	if ra != rc {
		t.Fatal("factory cursors disagree on the first request")
	}
	want := MustGenerate(KVStore, Options{Requests: 500, Seed: 3})
	if ra != want.Requests[0] || ra2 != want.Requests[1] {
		t.Fatal("interleaved cursors corrupted the stream")
	}
}

func TestScaleSourceMatchesScale(t *testing.T) {
	base := MustGenerate(WebSearch, Options{Requests: 800, Seed: 5})
	want := Scale(base, 4)
	got, err := trace.Materialize(ScaleSource(MustSource(WebSearch, Options{Requests: 800, Seed: 5}), 4))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Requests, want.Requests) {
		t.Fatal("ScaleSource differs from Scale")
	}
}
