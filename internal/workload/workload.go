// Package workload generates synthetic block I/O traces for the workload
// categories evaluated in the paper (Tables 2 and 3).
//
// The paper drives AutoBlox with production traces (YCSB/RocksDB, TPCC on
// SQL Server, UMass WebSearch, MapReduce, LiveMaps, cloud storage,
// recommendation serving, plus six "new" workloads). Those traces are not
// redistributable, so each category is substituted by a parameterized
// generator whose profile reproduces the properties the paper relies on:
// read/write mix, I/O size distribution, sequentiality, spatial locality
// (hot spots), arrival intensity and burstiness, and multi-phase
// behaviour. Categories are distinct by construction, which is what the
// clustering (§3.1) and per-category tuning (§4.2) require.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"autoblox/internal/trace"
)

// Category identifies one workload family.
type Category string

// The seven studied workload categories (Table 2).
const (
	Recomm         Category = "Recomm"
	KVStore        Category = "KVStore"
	Database       Category = "Database"
	WebSearch      Category = "WebSearch"
	BatchAnalytics Category = "BatchAnalytics"
	CloudStorage   Category = "CloudStorage"
	LiveMaps       Category = "LiveMaps"
)

// The six new workload categories (Table 3).
const (
	VDI        Category = "VDI"
	FIU        Category = "FIU"
	RadiusAuth Category = "RadiusAuth"
	LevelDB    Category = "LevelDB"
	MySQL      Category = "MySQL"
	HDFS       Category = "HDFS"
)

// Studied returns the Table 2 categories in the paper's column order.
func Studied() []Category {
	return []Category{Recomm, KVStore, Database, WebSearch, BatchAnalytics, CloudStorage, LiveMaps}
}

// New returns the Table 3 categories.
func New() []Category {
	return []Category{LevelDB, MySQL, HDFS, VDI, FIU, RadiusAuth}
}

// All returns every known category.
func All() []Category { return append(Studied(), New()...) }

// sizeClass is one bucket of the I/O size distribution.
type sizeClass struct {
	sectors uint32
	weight  float64
}

// phase describes one execution phase of a workload; long traces cycle
// through phases, which is how the generators cover "multiple execution
// phases" as the paper's multi-hour traces do.
type phase struct {
	readRatio   float64     // probability a request is a read
	seqProb     float64     // probability the next request continues the current stream
	hotFrac     float64     // fraction of random accesses that hit the hot region
	hotSpanFrac float64     // hot region size as a fraction of the address span
	meanGapUS   float64     // mean exponential inter-arrival, microseconds
	burstLen    int         // requests per arrival burst (1 = no bursting)
	sizes       []sizeClass // I/O size mix
	writeSeq    bool        // writes are append-style (log/compaction)
}

// profile is a full workload description.
type profile struct {
	spanSectors uint64 // addressable span touched by the workload
	phases      []phase
	streams     int // number of concurrent sequential streams
}

// profiles maps each category to its generator profile. Numbers follow
// the qualitative descriptions in the paper: WebSearch is 99.9% read,
// small, random, latency-critical; BatchAnalytics is 97.8% read with
// large scans; KVStore and LiveMaps are I/O-intensive and chip-layout
// sensitive; CloudStorage is large sequential; Database (TPCC) is small
// random mixed; Recomm is read-mostly medium random.
var profiles = map[Category]profile{
	WebSearch: {
		spanSectors: 192 << 21, // 192 GiB in sectors
		streams:     1,
		phases: []phase{{
			readRatio: 0.999, seqProb: 0.02, hotFrac: 0.55, hotSpanFrac: 0.05,
			meanGapUS: 60, burstLen: 2, writeSeq: false,
			sizes: []sizeClass{{16, 0.75}, {8, 0.2}, {32, 0.05}},
		}},
	},
	BatchAnalytics: {
		spanSectors: 448 << 21,
		streams:     4,
		phases: []phase{
			{
				readRatio: 0.978, seqProb: 0.93, hotFrac: 0.1, hotSpanFrac: 0.2,
				meanGapUS: 95, burstLen: 8, writeSeq: true,
				sizes: []sizeClass{{512, 0.6}, {256, 0.3}, {1024, 0.1}},
			},
			{
				readRatio: 0.97, seqProb: 0.85, hotFrac: 0.2, hotSpanFrac: 0.25,
				meanGapUS: 100, burstLen: 4, writeSeq: true,
				sizes: []sizeClass{{256, 0.7}, {128, 0.3}},
			},
		},
	},
	KVStore: {
		spanSectors: 320 << 21,
		streams:     2,
		phases: []phase{
			{ // read-heavy point lookups with compaction writes
				readRatio: 0.72, seqProb: 0.12, hotFrac: 0.65, hotSpanFrac: 0.08,
				meanGapUS: 24, burstLen: 4, writeSeq: true,
				sizes: []sizeClass{{8, 0.55}, {16, 0.25}, {128, 0.15}, {512, 0.05}},
			},
			{ // compaction-dominated phase
				readRatio: 0.45, seqProb: 0.6, hotFrac: 0.3, hotSpanFrac: 0.15,
				meanGapUS: 40, burstLen: 10, writeSeq: true,
				sizes: []sizeClass{{256, 0.5}, {512, 0.3}, {8, 0.2}},
			},
		},
	},
	Database: {
		spanSectors: 256 << 21,
		streams:     1,
		phases: []phase{
			{ // OLTP mix: 8KB pages, random, ~60/40
				readRatio: 0.62, seqProb: 0.06, hotFrac: 0.5, hotSpanFrac: 0.1,
				meanGapUS: 3, burstLen: 2, writeSeq: false,
				sizes: []sizeClass{{16, 0.85}, {8, 0.1}, {64, 0.05}},
			},
			{ // log-flush phase
				readRatio: 0.3, seqProb: 0.5, hotFrac: 0.2, hotSpanFrac: 0.02,
				meanGapUS: 2.5, burstLen: 6, writeSeq: true,
				sizes: []sizeClass{{8, 0.6}, {16, 0.4}},
			},
		},
	},
	CloudStorage: {
		spanSectors: 640 << 21,
		streams:     6,
		phases: []phase{{
			readRatio: 0.55, seqProb: 0.88, hotFrac: 0.15, hotSpanFrac: 0.3,
			meanGapUS: 185, burstLen: 12, writeSeq: true,
			sizes: []sizeClass{{1024, 0.45}, {512, 0.35}, {2048, 0.2}},
		}},
	},
	LiveMaps: {
		spanSectors: 512 << 21,
		streams:     3,
		phases: []phase{
			{ // tile serving: intense medium reads
				readRatio: 0.85, seqProb: 0.35, hotFrac: 0.7, hotSpanFrac: 0.12,
				meanGapUS: 20, burstLen: 6, writeSeq: false,
				sizes: []sizeClass{{64, 0.5}, {128, 0.3}, {32, 0.2}},
			},
			{ // tile rebuild: heavy sequential writes
				readRatio: 0.35, seqProb: 0.8, hotFrac: 0.2, hotSpanFrac: 0.3,
				meanGapUS: 80, burstLen: 10, writeSeq: true,
				sizes: []sizeClass{{512, 0.6}, {256, 0.4}},
			},
		},
	},
	Recomm: {
		spanSectors: 288 << 21,
		streams:     1,
		phases: []phase{{
			readRatio: 0.9, seqProb: 0.15, hotFrac: 0.45, hotSpanFrac: 0.2,
			meanGapUS: 32, burstLen: 3, writeSeq: false,
			sizes: []sizeClass{{32, 0.4}, {64, 0.35}, {16, 0.25}},
		}},
	},

	// --- Table 3: new workloads. LevelDB, MySQL and HDFS are "new
	// traces" of existing categories (KVStore, Database, CloudStorage
	// respectively): same family, shifted parameters.
	LevelDB: {
		spanSectors: 280 << 21,
		streams:     2,
		phases: []phase{
			{
				readRatio: 0.68, seqProb: 0.18, hotFrac: 0.6, hotSpanFrac: 0.1,
				meanGapUS: 40, burstLen: 3, writeSeq: true,
				sizes: []sizeClass{{8, 0.5}, {16, 0.3}, {256, 0.2}},
			},
			{
				readRatio: 0.5, seqProb: 0.55, hotFrac: 0.35, hotSpanFrac: 0.18,
				meanGapUS: 45, burstLen: 8, writeSeq: true,
				sizes: []sizeClass{{512, 0.45}, {128, 0.35}, {8, 0.2}},
			},
		},
	},
	MySQL: {
		spanSectors: 384 << 21,
		streams:     2,
		phases: []phase{{ // TPCH: scan-heavy analytic queries
			readRatio: 0.93, seqProb: 0.7, hotFrac: 0.3, hotSpanFrac: 0.25,
			meanGapUS: 20, burstLen: 5, writeSeq: false,
			sizes: []sizeClass{{128, 0.5}, {256, 0.3}, {16, 0.2}},
		}},
	},
	HDFS: {
		spanSectors: 768 << 21,
		streams:     5,
		phases: []phase{{
			readRatio: 0.6, seqProb: 0.92, hotFrac: 0.1, hotSpanFrac: 0.35,
			meanGapUS: 255, burstLen: 16, writeSeq: true,
			sizes: []sizeClass{{2048, 0.5}, {1024, 0.3}, {512, 0.2}},
		}},
	},
	VDI: {
		spanSectors: 400 << 21,
		streams:     2,
		phases: []phase{
			{ // boot storm: bursty reads
				readRatio: 0.8, seqProb: 0.4, hotFrac: 0.75, hotSpanFrac: 0.06,
				meanGapUS: 15, burstLen: 20, writeSeq: false,
				sizes: []sizeClass{{64, 0.5}, {8, 0.3}, {128, 0.2}},
			},
			{ // steady state: write-tilted small random
				readRatio: 0.4, seqProb: 0.1, hotFrac: 0.5, hotSpanFrac: 0.12,
				meanGapUS: 70, burstLen: 2, writeSeq: false,
				sizes: []sizeClass{{8, 0.6}, {16, 0.25}, {32, 0.15}},
			},
		},
	},
	FIU: {
		spanSectors: 160 << 21,
		streams:     1,
		phases: []phase{{ // write-dominated small random (FIU SRCMap-style)
			readRatio: 0.22, seqProb: 0.08, hotFrac: 0.6, hotSpanFrac: 0.05,
			meanGapUS: 35, burstLen: 2, writeSeq: false,
			sizes: []sizeClass{{8, 0.7}, {16, 0.2}, {64, 0.1}},
		}},
	},
	RadiusAuth: {
		spanSectors: 96 << 21,
		streams:     1,
		phases: []phase{{ // periodic tiny log writes with rare reads
			readRatio: 0.12, seqProb: 0.45, hotFrac: 0.85, hotSpanFrac: 0.01,
			meanGapUS: 30, burstLen: 4, writeSeq: true,
			sizes: []sizeClass{{8, 0.85}, {16, 0.15}},
		}},
	},
}

// Options controls trace generation.
type Options struct {
	// Requests is the number of I/O requests to generate (default 30000).
	Requests int
	// Seed drives the generator; equal seeds give identical traces.
	Seed int64
	// TrimRatio is the probability that a would-be write is emitted as a
	// TRIM instead (0 = no trims, the historical behavior). The trimmed
	// span follows the phase's write placement, modeling hosts that
	// discard what they previously wrote.
	TrimRatio float64
	// Streams, when positive, stamps each request with a multi-stream
	// tag in [1, Streams], derived from the generator's internal
	// sequential-stream cursor so one logical stream keeps one tag.
	// Zero leaves requests untagged (the historical behavior).
	Streams int
}

func (o *Options) defaults() {
	if o.Requests <= 0 {
		o.Requests = 30000
	}
	if o.TrimRatio < 0 {
		o.TrimRatio = 0
	}
	if o.TrimRatio > 1 {
		o.TrimRatio = 1
	}
}

// Generate produces a synthetic trace for the category by draining the
// streaming generator, so the materialized and streamed paths share one
// implementation and are bit-for-bit identical by construction. Callers
// that never need random access should use NewSource directly.
func Generate(c Category, opt Options) (*trace.Trace, error) {
	src, err := NewSource(c, opt)
	if err != nil {
		return nil, err
	}
	return trace.Materialize(src)
}

// MustGenerate is Generate for known-good categories; it panics on error
// and is intended for examples and benchmarks.
func MustGenerate(c Category, opt Options) *trace.Trace {
	tr, err := Generate(c, opt)
	if err != nil {
		panic(err)
	}
	return tr
}

func pickSize(rng *rand.Rand, sizes []sizeClass) uint32 {
	var total float64
	for _, s := range sizes {
		total += s.weight
	}
	t := rng.Float64() * total
	var cum float64
	for _, s := range sizes {
		cum += s.weight
		if t <= cum {
			return s.sectors
		}
	}
	return sizes[len(sizes)-1].sectors
}

func hashCategory(c Category) uint32 {
	var h uint32 = 2166136261
	for _, b := range []byte(c) {
		h = (h ^ uint32(b)) * 16777619
	}
	return h
}

// SpanSectors reports the addressable span the category touches; the
// simulator uses it to size the logical space a trace folds into.
func SpanSectors(c Category) (uint64, error) {
	p, ok := profiles[c]
	if !ok {
		return 0, fmt.Errorf("workload: unknown category %q", c)
	}
	return p.spanSectors, nil
}

// Describe returns a stable human-readable summary of a category's
// profile (for documentation and the tracegen CLI).
func Describe(c Category) string {
	p, ok := profiles[c]
	if !ok {
		return "unknown"
	}
	ph := p.phases[0]
	return fmt.Sprintf("%s: %.0f%% read, seq %.0f%%, mean gap %.0fµs, %d phase(s), span %.0f GiB",
		c, ph.readRatio*100, ph.seqProb*100, ph.meanGapUS, len(p.phases),
		float64(p.spanSectors)*512/math.Pow(2, 30))
}

// Names returns all category names sorted, for CLI help.
func Names() []string {
	out := make([]string, 0, len(profiles))
	for c := range profiles {
		out = append(out, string(c))
	}
	sort.Strings(out)
	return out
}

// Scale returns a copy of the trace options semantics applied at the
// trace level: a generated trace with arrival gaps divided by intensity
// (>1 = more intense). Generators encode each category's canonical
// intensity; Scale lets users explore "what if this workload were 2×
// hotter" without editing profiles.
func Scale(tr *trace.Trace, intensity float64) *trace.Trace {
	return tr.Compress(intensity)
}

// ScaleSource is Scale as a stream adapter: arrival gaps divided by
// intensity without materializing the trace.
func ScaleSource(src trace.Source, intensity float64) trace.Source {
	return trace.CompressStream(src, intensity)
}
