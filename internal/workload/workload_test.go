package workload

import (
	"testing"
	"testing/quick"

	"autoblox/internal/trace"
)

func TestGenerateUnknown(t *testing.T) {
	if _, err := Generate(Category("nope"), Options{}); err == nil {
		t.Fatal("expected error for unknown category")
	}
	if _, err := SpanSectors(Category("nope")); err == nil {
		t.Fatal("expected error for unknown category span")
	}
}

func TestGenerateAllCategories(t *testing.T) {
	for _, c := range All() {
		tr, err := Generate(c, Options{Requests: 2000, Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", c, err)
		}
		if len(tr.Requests) != 2000 {
			t.Fatalf("%s: got %d requests", c, len(tr.Requests))
		}
		if tr.Name != string(c) {
			t.Fatalf("%s: trace name %q", c, tr.Name)
		}
		span, _ := SpanSectors(c)
		var prev int64 = -1
		for i, r := range tr.Requests {
			if int64(r.Arrival) < prev {
				t.Fatalf("%s: arrivals not monotone at %d", c, i)
			}
			prev = int64(r.Arrival)
			if r.LBA+uint64(r.Sectors) > span {
				t.Fatalf("%s: request %d exceeds span", c, i)
			}
			if r.Sectors == 0 {
				t.Fatalf("%s: zero-size request", c)
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := MustGenerate(Database, Options{Requests: 500, Seed: 42})
	b := MustGenerate(Database, Options{Requests: 500, Seed: 42})
	for i := range a.Requests {
		if a.Requests[i] != b.Requests[i] {
			t.Fatalf("same seed differs at %d", i)
		}
	}
	c := MustGenerate(Database, Options{Requests: 500, Seed: 43})
	same := true
	for i := range a.Requests {
		if a.Requests[i] != c.Requests[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestProfilesMatchPaperCharacteristics(t *testing.T) {
	ws := MustGenerate(WebSearch, Options{Requests: 5000, Seed: 7})
	if rf := ws.ReadFraction(); rf < 0.99 {
		t.Fatalf("WebSearch read fraction %g, paper says 99.9%%", rf)
	}
	ba := MustGenerate(BatchAnalytics, Options{Requests: 5000, Seed: 7})
	if rf := ba.ReadFraction(); rf < 0.95 {
		t.Fatalf("BatchAnalytics read fraction %g, paper says 97.8%%", rf)
	}
	fiu := MustGenerate(FIU, Options{Requests: 5000, Seed: 7})
	if rf := fiu.ReadFraction(); rf > 0.5 {
		t.Fatalf("FIU should be write-dominated, read fraction %g", rf)
	}
	// CloudStorage moves much more data per request than WebSearch.
	cs := MustGenerate(CloudStorage, Options{Requests: 5000, Seed: 7})
	if cs.TotalBytes() < 10*ws.TotalBytes() {
		t.Fatalf("CloudStorage bytes %d should dwarf WebSearch %d", cs.TotalBytes(), ws.TotalBytes())
	}
}

func TestCategoriesAreDistinguishable(t *testing.T) {
	// Feature centroids of different categories must be farther apart
	// than windows within a category — a precondition for Fig. 2.
	feats := map[Category][][]float64{}
	for _, c := range []Category{WebSearch, CloudStorage, Database} {
		tr := MustGenerate(c, Options{Requests: 9000, Seed: 3})
		feats[c] = trace.FeatureMatrix(trace.Windows(tr, 3000))
	}
	centroid := func(rows [][]float64) []float64 {
		c := make([]float64, len(rows[0]))
		for _, r := range rows {
			for j, v := range r {
				c[j] += v
			}
		}
		for j := range c {
			c[j] /= float64(len(rows))
		}
		return c
	}
	dist := func(a, b []float64) float64 {
		var s float64
		for i := range a {
			d := a[i] - b[i]
			s += d * d
		}
		return s
	}
	cw := centroid(feats[WebSearch])
	cc := centroid(feats[CloudStorage])
	cd := centroid(feats[Database])
	if dist(cw, cc) < 1 || dist(cw, cd) < 1 || dist(cc, cd) < 1 {
		t.Fatalf("category centroids too close: ws-cs=%g ws-db=%g cs-db=%g",
			dist(cw, cc), dist(cw, cd), dist(cc, cd))
	}
}

func TestStudiedNewAll(t *testing.T) {
	if len(Studied()) != 7 || len(New()) != 6 || len(All()) != 13 {
		t.Fatalf("category counts wrong: %d/%d/%d", len(Studied()), len(New()), len(All()))
	}
	if len(Names()) != 13 {
		t.Fatalf("Names() = %d entries", len(Names()))
	}
	for _, c := range All() {
		if Describe(c) == "unknown" {
			t.Fatalf("Describe(%s) unknown", c)
		}
	}
}

// Property: any request count and seed produce a well-formed trace.
func TestGenerateWellFormedProperty(t *testing.T) {
	cats := All()
	f := func(seed int64, nRaw uint16, catIdx uint8) bool {
		n := int(nRaw%3000) + 1
		c := cats[int(catIdx)%len(cats)]
		tr, err := Generate(c, Options{Requests: n, Seed: seed})
		if err != nil || len(tr.Requests) != n {
			return false
		}
		span, _ := SpanSectors(c)
		for _, r := range tr.Requests {
			if r.LBA+uint64(r.Sectors) > span || r.Sectors == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestScaleIntensity(t *testing.T) {
	tr := MustGenerate(Database, Options{Requests: 1000, Seed: 1})
	hot := Scale(tr, 2)
	if hot.Duration() >= tr.Duration() {
		t.Fatal("2x intensity should halve the duration")
	}
	if len(hot.Requests) != len(tr.Requests) {
		t.Fatal("Scale changed request count")
	}
}
