// Parallel-validation benchmarks: serial vs worker-pool execution of
// the same simulation workload, on a cold cache each iteration. The
// tuning bench drives the full §3.4 loop; the matrix-sweep bench
// isolates the raw MeasureBatch fan-out. Run with
//
//	go test -bench='SerialVsParallel' -run=^$ .
//
// Speedup scales with GOMAXPROCS (each ssd.Simulator.Run is independent
// and CPU-bound); on a single-core runner the two modes coincide, which
// doubles as a check that the pool adds no measurable overhead.
package autoblox_test

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"testing"

	"autoblox/internal/core"
	"autoblox/internal/obs"
	"autoblox/internal/obs/httpobs"
	"autoblox/internal/ssd"
	"autoblox/internal/ssdconf"
	"autoblox/internal/trace"
	"autoblox/internal/workload"
)

// benchTraces generates the shared multi-cluster workload set once.
func benchTraces(b *testing.B) map[string]*trace.Trace {
	b.Helper()
	ws := map[string]*trace.Trace{}
	for _, c := range []workload.Category{workload.Database, workload.WebSearch, workload.CloudStorage} {
		ws[string(c)] = workload.MustGenerate(c, workload.Options{Requests: 2000, Seed: 21})
	}
	return ws
}

// coldValidator builds a fresh (empty-cache) validator with the given
// worker bound.
func coldValidator(ws map[string]*trace.Trace, parallel int) (*core.Validator, ssdconf.Config) {
	space := ssdconf.NewSpace(ssdconf.DefaultConstraints())
	v := core.NewValidator(space, ws)
	v.Parallel = parallel
	return v, space.FromDevice(ssd.Intel750())
}

// parallelModes enumerates the compared worker bounds: serial, the
// machine's GOMAXPROCS, and a fixed 8 for cross-machine comparability.
func parallelModes() []struct {
	name     string
	parallel int
} {
	return []struct {
		name     string
		parallel int
	}{
		{"serial", 1},
		{fmt.Sprintf("parallel-%d", runtime.GOMAXPROCS(0)), 0},
		{"parallel-8", 8},
	}
}

// BenchmarkTuneSerialVsParallel times a full multi-cluster tuning run
// (grader reference batch + BO loop) at each worker bound. Every
// iteration starts from a cold simulation cache so the measured time is
// dominated by simulator execution, the quantity the pool parallelizes.
func BenchmarkTuneSerialVsParallel(b *testing.B) {
	ws := benchTraces(b)
	for _, mode := range parallelModes() {
		b.Run(mode.name, func(b *testing.B) {
			var grade float64
			var sims int
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				v, ref := coldValidator(ws, mode.parallel)
				b.StartTimer()
				g, err := core.NewGrader(context.Background(), v, ref, core.DefaultAlpha, core.DefaultBeta)
				if err != nil {
					b.Fatal(err)
				}
				tuner, err := core.NewTuner(v.Space, v, g, core.TunerOptions{
					Seed: 5, MaxIterations: 6, SGDSteps: 3,
				})
				if err != nil {
					b.Fatal(err)
				}
				res, err := tuner.Tune(context.Background(), string(workload.Database), []ssdconf.Config{ref})
				if err != nil {
					b.Fatal(err)
				}
				grade, sims = res.BestGrade, res.SimRuns
			}
			b.ReportMetric(grade, "best_grade")
			b.ReportMetric(float64(sims), "sims")
		})
	}
}

// BenchmarkTuneObserved repeats the parallel-8 tuning run with the full
// observability control plane live — a metrics registry on the
// validator, a global tracer streaming spans to io.Discard, a flight
// recorder, a TuneStatus fed by the iteration hook, and an introspection
// HTTP server up (idle but listening, as in a real -http run). Comparing
// its ns/op against BenchmarkTuneSerialVsParallel/parallel-8 measures
// the instrumentation overhead; the nil-hook (disabled) path is covered
// by the obs package's zero-allocation benchmarks.
func BenchmarkTuneObserved(b *testing.B) {
	ws := benchTraces(b)
	var grade float64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		v, ref := coldValidator(ws, 8)
		v.Obs = obs.NewRegistry()
		obs.SetTracer(obs.NewTracer(io.Discard))
		obs.SetFlightRecorder(obs.NewFlightRecorder(1024))
		st := obs.NewTuneStatus()
		st.SetSims(v.Obs.Counter(core.MetricSimRuns))
		st.Begin(string(workload.Database), 6)
		srv, err := httpobs.Start("127.0.0.1:0", httpobs.Options{
			Registry: v.Obs, Tune: st, Flight: obs.Recorder(),
		})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		g, err := core.NewGrader(context.Background(), v, ref, core.DefaultAlpha, core.DefaultBeta)
		if err != nil {
			b.Fatal(err)
		}
		tuner, err := core.NewTuner(v.Space, v, g, core.TunerOptions{
			Seed: 5, MaxIterations: 6, SGDSteps: 3,
			OnIteration: st.Update,
		})
		if err != nil {
			b.Fatal(err)
		}
		res, err := tuner.Tune(context.Background(), string(workload.Database), []ssdconf.Config{ref})
		if err != nil {
			b.Fatal(err)
		}
		grade = res.BestGrade
		b.StopTimer()
		st.Done()
		srv.Close()
		obs.SetTracer(nil)
		obs.SetFlightRecorder(nil)
		b.StartTimer()
	}
	b.ReportMetric(grade, "best_grade")
}

// BenchmarkMatrixSweepSerialVsParallel isolates the batch engine: a
// config×cluster sweep (the runall/matrix building block) fanned through
// MeasureBatch on a cold cache.
func BenchmarkMatrixSweepSerialVsParallel(b *testing.B) {
	ws := benchTraces(b)
	for _, mode := range parallelModes() {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				v, ref := coldValidator(ws, mode.parallel)
				qd, err := v.Space.ParamIndex("QueueDepth")
				if err != nil {
					b.Fatal(err)
				}
				cfgs := make([]ssdconf.Config, 6)
				for k := range cfgs {
					cfg := ref.Clone()
					cfg[qd] = k
					cfgs[k] = cfg
				}
				b.StartTimer()
				if err := v.MeasureBatch(context.Background(), cfgs, v.Clusters()); err != nil {
					b.Fatal(err)
				}
				if got, want := v.SimRuns(), len(cfgs)*len(ws); got != want {
					b.Fatalf("SimRuns = %d, want %d", got, want)
				}
			}
		})
	}
}
